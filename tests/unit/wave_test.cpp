// Regression tests for the VCD rendering fixes: the $dumpvars initial
// block, change-only value lines, bit-select reference sanitisation for
// multi-bit labels like "sum[1]", and the watchNet default label.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <sstream>
#include <vector>

#include "src/sim/wave.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kCounterish = R"(
TYPE t = COMPONENT (IN a: boolean; OUT sum: ARRAY[1..2] OF boolean;
                    OUT fixed: boolean) IS
BEGIN
  sum[1] := a;
  sum[2] := NOT a;
  fixed := OR(a, NOT a)
END;
SIGNAL top: t;
)";

struct WaveFixture {
  Built b;
  std::unique_ptr<SimGraph> graph;
  std::unique_ptr<Simulation> sim;
};

WaveFixture makeFixture() {
  WaveFixture f;
  f.b = buildOk(kCounterish, "top");
  f.graph = std::make_unique<SimGraph>(
      buildSimGraph(*f.b.design, f.b.comp->diags()));
  f.sim = std::make_unique<Simulation>(*f.graph);
  return f;
}

TEST(WaveVcd, MultiBitLabelsBecomeBitSelectReferences) {
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  wave.watchPort("sum");  // expands to sum[1], sum[2]
  f.sim->setInput("a", Logic::One);
  f.sim->step();
  wave.sample();
  std::string vcd = wave.renderVcd();
  // "sum[1]" is not a legal VCD identifier; the renderer must emit the
  // standard "sum [1]" bit-select form instead.
  EXPECT_NE(vcd.find("$var wire 1 s0 sum [1] $end"), std::string::npos)
      << vcd;
  EXPECT_NE(vcd.find("$var wire 1 s1 sum [2] $end"), std::string::npos)
      << vcd;
  EXPECT_EQ(vcd.find("sum[1]"), std::string::npos) << vcd;
}

TEST(WaveVcd, DumpvarsInitialBlockThenChangesOnly) {
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  wave.watchPort("sum");
  wave.watchPort("fixed");
  for (int i = 0; i < 4; ++i) {
    f.sim->setInput("a", logicFromBool(i % 2));
    f.sim->step();
    wave.sample();
  }
  std::string vcd = wave.renderVcd();

  // Time 0 carries a $dumpvars block with one entry per track.
  size_t t0 = vcd.find("#0\n$dumpvars\n");
  ASSERT_NE(t0, std::string::npos) << vcd;
  size_t end0 = vcd.find("$end\n", t0);
  ASSERT_NE(end0, std::string::npos);
  std::string initial = vcd.substr(t0, end0 - t0);
  EXPECT_NE(initial.find("0s0"), std::string::npos) << vcd;  // sum[1] = a
  EXPECT_NE(initial.find("1s1"), std::string::npos) << vcd;  // sum[2]
  EXPECT_NE(initial.find("1s2"), std::string::npos) << vcd;  // fixed

  // 'fixed' never changes after time 0: it must appear exactly once in
  // the whole dump (the old renderer re-emitted every signal each cycle).
  size_t occurrences = 0;
  for (size_t pos = vcd.find("s2\n"); pos != std::string::npos;
       pos = vcd.find("s2\n", pos + 1)) {
    ++occurrences;
  }
  EXPECT_EQ(occurrences, 1u) << vcd;

  // 'sum[1]' toggles every cycle, so each later timestamp carries it.
  for (int c = 1; c < 4; ++c) {
    std::string stamp = "#" + std::to_string(c) + "\n";
    EXPECT_NE(vcd.find(stamp), std::string::npos) << vcd;
  }
}

TEST(WaveVcd, RoundTripValuesMatchHistory) {
  // Reconstruct the value of each signal at each cycle from the VCD text
  // and compare against renderTable's ground truth — the documented
  // change-only semantics must lose no information.
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  wave.watchPort("sum");
  const int kCycles = 6;
  for (int i = 0; i < kCycles; ++i) {
    f.sim->setInput("a", logicFromBool((i / 2) % 2));
    f.sim->step();
    wave.sample();
  }
  std::string vcd = wave.renderVcd();

  // Tiny VCD value-change reader for single-char ids s0/s1.
  char cur[2] = {'?', '?'};
  std::vector<std::array<char, 2>> at(kCycles, {'?', '?'});
  size_t time = 0;
  std::istringstream in(vcd);
  std::string line;
  bool inBody = false;
  while (std::getline(in, line)) {
    if (line.rfind("$enddefinitions", 0) == 0) {
      inBody = true;
      continue;
    }
    if (!inBody || line.empty()) continue;
    if (line[0] == '#') {
      // Commit the running values for every cycle up to the new time.
      size_t next = std::stoul(line.substr(1));
      for (size_t c = time; c < next && c < at.size(); ++c)
        at[c] = {cur[0], cur[1]};
      time = next;
      continue;
    }
    if (line == "$dumpvars" || line == "$end") continue;
    ASSERT_GE(line.size(), 3u) << line;
    int idx = line[2] - '0';
    ASSERT_TRUE(idx == 0 || idx == 1) << line;
    cur[idx] = line[0];
  }
  for (size_t c = time; c < at.size(); ++c) at[c] = {cur[0], cur[1]};

  std::string table = wave.renderTable();
  // renderTable rows: "<label> | v v v ..." in track order.
  std::istringstream rows(table);
  std::string row;
  int track = 0;
  while (std::getline(rows, row)) {
    size_t bar = row.find("| ");
    ASSERT_NE(bar, std::string::npos);
    std::string vals = row.substr(bar + 2);
    int cycle = 0;
    for (char v : vals) {
      if (v == ' ') continue;
      ASSERT_LT(cycle, kCycles);
      EXPECT_EQ(at[cycle][track], v)
          << "track " << track << " cycle " << cycle << "\n" << vcd;
      ++cycle;
    }
    ++track;
  }
  EXPECT_EQ(track, 2);
}

TEST(WaveVcd, WatchNetDefaultsToNetlistName) {
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  const Port* p = f.b.design->findPort("fixed");
  ASSERT_NE(p, nullptr);
  wave.watchNet(p->nets[0]);  // no label: must not be nameless
  f.sim->step();
  wave.sample();
  std::string vcd = wave.renderVcd();
  EXPECT_EQ(vcd.find("$var wire 1 s0  $end"), std::string::npos) << vcd;
  EXPECT_NE(vcd.find("fixed"), std::string::npos) << vcd;
}

TEST(WaveVcd, HeaderCarriesDateVersionTimescale) {
  // Regression: the old renderer started straight at "$timescale 1ns
  // $end" with no $date/$version sections, which strict VCD readers
  // reject.  The header must now open with all three, before $scope, and
  // the date text must be deterministic (no wall-clock) so identical runs
  // produce byte-identical dumps.
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  wave.watchPort("fixed");
  f.sim->step();
  wave.sample();
  std::string vcd = wave.renderVcd();

  size_t date = vcd.find("$date\n");
  size_t version = vcd.find("$version\n");
  size_t timescale = vcd.find("$timescale\n");
  size_t scope = vcd.find("$scope module");
  ASSERT_NE(date, std::string::npos) << vcd;
  ASSERT_NE(version, std::string::npos) << vcd;
  ASSERT_NE(timescale, std::string::npos) << vcd;
  ASSERT_NE(scope, std::string::npos) << vcd;
  EXPECT_EQ(date, 0u) << vcd;
  EXPECT_LT(date, version);
  EXPECT_LT(version, timescale);
  EXPECT_LT(timescale, scope);
  EXPECT_NE(vcd.find("$timescale\n  1ns\n$end\n"), std::string::npos) << vcd;

  // Determinism: a second identical run renders the same bytes.
  WaveFixture g = makeFixture();
  WaveRecorder wave2(*g.sim);
  wave2.watchPort("fixed");
  g.sim->step();
  wave2.sample();
  EXPECT_EQ(vcd, wave2.renderVcd());
}

TEST(WaveVcd, EmptySamplesStillRenderHeader) {
  WaveFixture f = makeFixture();
  WaveRecorder wave(*f.sim);
  wave.watchPort("fixed");
  std::string vcd = wave.renderVcd();
  EXPECT_NE(vcd.find("$enddefinitions $end"), std::string::npos);
  EXPECT_EQ(vcd.find("$dumpvars"), std::string::npos);
}

}  // namespace
}  // namespace zeus::test

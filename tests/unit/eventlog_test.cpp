// Event-log and flight-recorder unit tests: zeus-log-v1 line shape,
// request-id tagging, the clear/disable generation rule (same contract
// as the trace buffer), and the crash-ring dump from normal context.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/support/eventlog.h"
#include "src/support/trace.h"

namespace zeus::test {
namespace {

using eventlog::boolean;
using eventlog::num;
using eventlog::Severity;
using eventlog::str;

/// Restores process-wide log/recorder state so these tests cannot leak
/// into the serve/metrics tests sharing this binary.
struct LogGuard {
  LogGuard() { reset(); }
  ~LogGuard() { reset(); }
  static void reset() {
    eventlog::setEnabled(false);
    eventlog::clear();
    eventlog::setRequestId("");
    flightrec::disarm();
  }
};

TEST(EventLog, DisabledEmitsNothing) {
  LogGuard guard;
  eventlog::emit(Severity::Info, "test", "dropped");
  EXPECT_EQ(eventlog::eventCount(), 0u);
}

TEST(EventLog, LineShape) {
  LogGuard guard;
  eventlog::setEnabled(true);
  eventlog::emit(Severity::Warn, "farm", "block-done",
                 {num("block", uint64_t{3}), boolean("ok", true),
                  str("note", "a \"quoted\" value")});
  ASSERT_EQ(eventlog::eventCount(), 1u);

  const std::string jsonl = eventlog::renderJsonl();
  std::vector<std::string> lines;
  std::istringstream in(jsonl);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);  // header + one event

  // Header: schema id + build stamp.
  EXPECT_NE(lines[0].find("\"schema\": \"zeus-log-v1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"build\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"git\""), std::string::npos);

  // Event line: all envelope keys plus the typed fields.
  const std::string& e = lines[1];
  EXPECT_NE(e.find("\"v\": 1"), std::string::npos);
  EXPECT_NE(e.find("\"ts_us\": "), std::string::npos);
  EXPECT_NE(e.find("\"sev\": \"warn\""), std::string::npos);
  EXPECT_NE(e.find("\"sub\": \"farm\""), std::string::npos);
  EXPECT_NE(e.find("\"ev\": \"block-done\""), std::string::npos);
  EXPECT_NE(e.find("\"block\": 3"), std::string::npos);
  EXPECT_NE(e.find("\"ok\": true"), std::string::npos);
  EXPECT_NE(e.find("\"note\": \"a \\\"quoted\\\" value\""),
            std::string::npos);
  EXPECT_EQ(e.find("\"req\""), std::string::npos);  // no id set
}

TEST(EventLog, RequestIdTagsEvents) {
  LogGuard guard;
  eventlog::setEnabled(true);
  eventlog::setRequestId("r42");
  EXPECT_EQ(eventlog::requestId(), "r42");
  eventlog::emit(Severity::Info, "serve", "tagged");
  eventlog::setRequestId("");
  eventlog::emit(Severity::Info, "serve", "untagged");

  const std::string jsonl = eventlog::renderJsonl();
  EXPECT_NE(jsonl.find("\"req\": \"r42\""), std::string::npos);
  // Exactly one line carries the id.
  size_t hits = 0;
  for (size_t at = jsonl.find("\"req\""); at != std::string::npos;
       at = jsonl.find("\"req\"", at + 1)) {
    ++hits;
  }
  EXPECT_EQ(hits, 1u);
}

TEST(EventLog, RenderIsTimestampSorted) {
  LogGuard guard;
  eventlog::setEnabled(true);
  // Emit from two threads; render must interleave by ts_us regardless of
  // which per-thread buffer each line landed in.
  std::thread t([] {
    for (int i = 0; i < 20; ++i) {
      eventlog::emit(Severity::Debug, "test", "from-thread");
    }
  });
  for (int i = 0; i < 20; ++i) {
    eventlog::emit(Severity::Debug, "test", "from-main");
  }
  t.join();
  ASSERT_EQ(eventlog::eventCount(), 40u);

  const std::string jsonl = eventlog::renderJsonl();
  std::istringstream in(jsonl);
  std::string line;
  std::getline(in, line);  // header
  uint64_t lastTs = 0;
  size_t events = 0;
  while (std::getline(in, line)) {
    const size_t at = line.find("\"ts_us\": ");
    ASSERT_NE(at, std::string::npos) << line;
    const uint64_t ts = std::stoull(line.substr(at + 9));
    EXPECT_GE(ts, lastTs);
    lastTs = ts;
    ++events;
  }
  EXPECT_EQ(events, 40u);
}

TEST(EventLog, ClearDropsEverythingAndEmitsKeepWorking) {
  LogGuard guard;
  eventlog::setEnabled(true);
  eventlog::emit(Severity::Info, "test", "one");
  ASSERT_EQ(eventlog::eventCount(), 1u);
  eventlog::clear();
  EXPECT_EQ(eventlog::eventCount(), 0u);
  eventlog::emit(Severity::Info, "test", "two");
  EXPECT_EQ(eventlog::eventCount(), 1u);
}

TEST(EventLog, ConcurrentEmitVsClear) {
  LogGuard guard;
  eventlog::setEnabled(true);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        eventlog::emit(Severity::Debug, "test", "stress");
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    (void)eventlog::eventCount();
    (void)eventlog::renderJsonl();
    eventlog::clear();
  }
  stop.store(true);
  for (std::thread& w : writers) w.join();
  eventlog::clear();
  EXPECT_EQ(eventlog::eventCount(), 0u);
}

TEST(FlightRecorder, DumpNowWritesSchemaValidFile) {
  LogGuard guard;
  const std::string path =
      testing::TempDir() + "/zeus_flightrec_test.json";
  std::remove(path.c_str());

  EXPECT_FALSE(flightrec::dumpNow("unarmed"));  // not armed: refuses

  flightrec::arm(path.c_str());
  ASSERT_TRUE(flightrec::armed());
  // Ring records even with the JSONL sink off — crash dumps must not
  // depend on --log being passed.
  eventlog::emit(Severity::Error, "test", "ring-only",
                 {num("n", uint64_t{7})});
  EXPECT_GE(flightrec::ringCount(), 1u);

  {
    trace::Span open("open-span", "test");  // should appear in the dump
    ASSERT_TRUE(flightrec::dumpNow("watchdog"));
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();
  EXPECT_NE(dump.find("\"schema\": \"zeus-crash-v1\""), std::string::npos);
  EXPECT_NE(dump.find("\"reason\": \"watchdog\""), std::string::npos);
  EXPECT_NE(dump.find("\"ev\": \"ring-only\""), std::string::npos);
  EXPECT_NE(dump.find("\"open_spans\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\": \"open-span\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DisarmStopsRecording) {
  LogGuard guard;
  const std::string path =
      testing::TempDir() + "/zeus_flightrec_disarm.json";
  flightrec::arm(path.c_str());
  eventlog::emit(Severity::Info, "test", "recorded");
  EXPECT_GE(flightrec::ringCount(), 1u);
  flightrec::disarm();
  EXPECT_FALSE(flightrec::armed());
  EXPECT_EQ(flightrec::ringCount(), 0u);
  eventlog::emit(Severity::Info, "test", "not-recorded");
  EXPECT_EQ(flightrec::ringCount(), 0u);
  EXPECT_FALSE(flightrec::dumpNow("watchdog"));
  std::remove(path.c_str());
}

TEST(FlightRecorder, SpanStackPushPopBalance) {
  LogGuard guard;
  const std::string path =
      testing::TempDir() + "/zeus_flightrec_spans.json";
  flightrec::arm(path.c_str());
  {
    trace::Span a("outer", "test");
    {
      trace::Span b("inner", "test");
      ASSERT_TRUE(flightrec::dumpNow("budget"));
    }
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string dump = ss.str();
  EXPECT_NE(dump.find("\"name\": \"outer\""), std::string::npos);
  EXPECT_NE(dump.find("\"name\": \"inner\""), std::string::npos);

  // After both spans closed, a fresh dump lists no open spans from this
  // thread at depth > 0.
  ASSERT_TRUE(flightrec::dumpNow("budget"));
  std::ifstream in2(path);
  std::stringstream ss2;
  ss2 << in2.rdbuf();
  EXPECT_EQ(ss2.str().find("\"name\": \"outer\""), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace zeus::test

// Every orientation change of §6.3, applied through the solver to an
// asymmetric sub-layout, with child positions verified geometrically.
#include <gtest/gtest.h>

#include "src/layout/geometry.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

// `wide` is a 3x1 row of three distinguishable cells p,q,r (p leftmost).
// The test places `wide` under each orientation and checks where p lands.
std::string sourceWith(const std::string& orientation) {
  return R"(
TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN b := a END;
wide = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL p, q, r: cell;
  { ORDER lefttoright p; q; r END }
BEGIN
  p(a, q.a); q(p.b, r.a); r(q.b, b)
END;
t = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL w: wide;
  { )" + orientation +
         R"( w }
BEGIN
  w(a, b)
END;
SIGNAL top: t;
)";
}

struct OrientCase {
  const char* name;
  int64_t w, h;       // expected bounds
  Rect p;             // expected rect of the first cell
};

class OrientationPlacement : public ::testing::TestWithParam<OrientCase> {};

TEST_P(OrientationPlacement, PlacesChildrenCorrectly) {
  const OrientCase& c = GetParam();
  Built b = buildOk(sourceWith(c.name[0] ? c.name : ""), "top");
  ASSERT_NE(b.design, nullptr);
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  EXPECT_FALSE(b.comp->diags().has(Diag::LayoutUnknownOrientation));
  EXPECT_EQ(lr.bounds.w, c.w) << c.name;
  EXPECT_EQ(lr.bounds.h, c.h) << c.name;
  const PlacedInstance* p = lr.find("top.w.p");
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->rect, c.p) << c.name;
  std::string overlap;
  EXPECT_FALSE(lr.hasOverlaps(&overlap)) << c.name << ": " << overlap;
}

// Original row: p at (0,0), q at (1,0), r at (2,0) in a 3x1 box.
const OrientCase kCases[] = {
    {"", 3, 1, {0, 0, 1, 1}},
    {"rotate90", 1, 3, {0, 2, 1, 1}},   // ccw: left end moves to bottom
    {"rotate180", 3, 1, {2, 0, 1, 1}},
    {"rotate270", 1, 3, {0, 0, 1, 1}},  // left end at top
    {"flip0", 3, 1, {0, 0, 1, 1}},      // horizontal-axis mirror: no-op in 1 row
    {"flip90", 3, 1, {2, 0, 1, 1}},     // vertical-axis mirror
    {"flip45", 1, 3, {0, 0, 1, 1}},     // transpose
    {"flip135", 1, 3, {0, 2, 1, 1}},    // anti-transpose
};

std::string nameOf(const ::testing::TestParamInfo<OrientCase>& i) {
  return i.param.name[0] ? i.param.name : "identity";
}

INSTANTIATE_TEST_SUITE_P(All, OrientationPlacement,
                         ::testing::ValuesIn(kCases), nameOf);

}  // namespace
}  // namespace zeus::test

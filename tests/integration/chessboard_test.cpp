// §6.4: the chessboard — virtual signals replaced by black/white component
// types through the layout language's replacement statement.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(Chessboard, ElaboratesWithReplacements) {
  Built b = buildOk(kChessboard, "board");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  // 16 cells, each either black or white.
  size_t black = 0, white = 0;
  std::function<void(const InstanceData&)> walk =
      [&](const InstanceData& inst) {
        for (const auto& [name, m] : inst.members) {
          std::vector<const Obj*> stack{&m.obj};
          while (!stack.empty()) {
            const Obj* o = stack.back();
            stack.pop_back();
            if (o->kind == ObjKind::Array) {
              for (const Obj& e : o->elems) stack.push_back(&e);
            } else if (o->kind == ObjKind::Instance && o->inst) {
              if (o->inst->type->name == "black") ++black;
              if (o->inst->type->name == "white") ++white;
              walk(*o->inst);
            }
          }
        }
      };
  walk(*b.design->top);
  EXPECT_EQ(black, 8u);
  EXPECT_EQ(white, 8u);
}

TEST(Chessboard, DataFlowsThroughTheGrid) {
  Built b = buildOk(kChessboard, "board");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  sim.setInputUint("tin", 0b1010);
  sim.setInputUint("lin", 0b0110);
  sim.step();
  // All outputs are defined: every path through black (pass-through) and
  // white (swap) cells terminates at the boundary.
  EXPECT_TRUE(sim.outputUint("bout").has_value());
  EXPECT_TRUE(sim.outputUint("rout").has_value());
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Chessboard, UsingVirtualWithoutReplacementFails) {
  const char* src = R"(
TYPE c = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL v: virtual;
BEGIN
  v(a, b)
END;
SIGNAL t: c;
)";
  expectElabError(src, "t", Diag::VirtualNotReplaced);
}

TEST(Chessboard, DoubleReplacementFails) {
  const char* src = R"(
TYPE cell = COMPONENT (IN a: boolean; OUT b: boolean) IS
BEGIN
  b := a
END;
c = COMPONENT (IN a: boolean; OUT b: boolean) IS
  SIGNAL v: virtual;
  { v = cell; v = cell }
BEGIN
  v(a, b)
END;
SIGNAL t: c;
)";
  expectElabError(src, "t", Diag::VirtualReplacedTwice);
}

}  // namespace
}  // namespace zeus::test

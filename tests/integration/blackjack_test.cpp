// E2: the blackjack finite-state machine (paper §10).
//
// A 6-state synchronous controller: start -> read -> sum -> firstace ->
// test -> (read | end).  Cards are 5-bit values; an ace (1) counts 11 once
// while the total stays under 22.  The machine asserts `hit` while reading,
// and `stand`/`broke` in the end state.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

class BlackjackDriver {
 public:
  explicit BlackjackDriver(EvaluatorKind kind = EvaluatorKind::Firing)
      : built_(buildOk(kBlackjack, "bj")),
        graph_(buildSimGraph(*built_.design, built_.comp->diags())),
        sim_(graph_, kind) {
    sim_.setInput("ycard", Logic::Zero);
    sim_.setInputUint("value", 0);
    sim_.setRset(true);
    sim_.step();
    sim_.setRset(false);
    sim_.step();  // start -> read
    sim_.step();  // outputs of the read state become visible
  }

  /// Feeds one card: waits for hit, presents the value for one cycle.
  void playCard(uint64_t value) {
    // The machine is in `read` (hit asserted); present the card.
    EXPECT_EQ(sim_.output("hit"), Logic::One);
    sim_.setInputUint("value", value);
    sim_.setInput("ycard", Logic::One);
    sim_.step();  // read -> sum
    sim_.setInput("ycard", Logic::Zero);
    sim_.step();  // sum -> firstace
    sim_.step();  // firstace -> test
    // test may loop (ace demotion); advance until the state leaves test.
    for (int i = 0; i < 8; ++i) {
      sim_.step();
      if (sim_.output("hit") == Logic::One ||
          sim_.output("stand") == Logic::One ||
          sim_.output("broke") == Logic::One) {
        return;
      }
    }
  }

  Simulation& sim() { return sim_; }

 private:
  Built built_;
  SimGraph graph_;
  Simulation sim_;
};

TEST(Blackjack, StandsOn19) {
  BlackjackDriver bj;
  bj.playCard(10);
  bj.playCard(9);
  EXPECT_EQ(bj.sim().output("stand"), Logic::One);
  EXPECT_EQ(bj.sim().output("broke"), Logic::Undef);  // not driven
  EXPECT_TRUE(bj.sim().errors().empty());
}

TEST(Blackjack, BreaksOn25) {
  BlackjackDriver bj;
  bj.playCard(10);
  bj.playCard(5);
  bj.playCard(10);
  EXPECT_EQ(bj.sim().output("broke"), Logic::One);
  EXPECT_TRUE(bj.sim().errors().empty());
}

TEST(Blackjack, AceCountsEleven) {
  // ace (1) + 10 = 21 with the ace promoted to 11 -> stand.
  BlackjackDriver bj;
  bj.playCard(1);
  bj.playCard(10);
  EXPECT_EQ(bj.sim().output("stand"), Logic::One);
}

TEST(Blackjack, AceDemotesWhenBusting) {
  // ace=11, then 6 (17), then 10 would make 27: the ace demotes to 1
  // (score 17) and the machine stands.
  BlackjackDriver bj;
  bj.playCard(1);   // 11
  bj.playCard(6);   // 17 -> stand? 17 >= 17 and < 22: machine ends here.
  EXPECT_EQ(bj.sim().output("stand"), Logic::One);
}

TEST(Blackjack, AceDemotionPath) {
  // 5 + 6 = 11, ace makes 22 (11 + 11)... play ace last: 5,6,ace ->
  // 5+6=11, +ace(11)=22 -> demote to 12 -> hit again, then 10 -> 22 ->
  // no ace left -> broke.
  BlackjackDriver bj;
  bj.playCard(5);
  bj.playCard(6);
  bj.playCard(1);   // 11+11=22 -> demote -> 12 -> read
  EXPECT_EQ(bj.sim().output("hit"), Logic::One);
  bj.playCard(10);  // 22, no ace -> broke
  EXPECT_EQ(bj.sim().output("broke"), Logic::One);
  EXPECT_TRUE(bj.sim().errors().empty());
}

TEST(Blackjack, NaiveEvaluatorAgrees) {
  BlackjackDriver a(EvaluatorKind::Firing);
  BlackjackDriver b(EvaluatorKind::Naive);
  for (BlackjackDriver* d : {&a, &b}) {
    d->playCard(10);
    d->playCard(9);
  }
  EXPECT_EQ(a.sim().output("stand"), b.sim().output("stand"));
  EXPECT_EQ(a.sim().output("broke"), b.sim().output("broke"));
}

TEST(Blackjack, ResetRestarts) {
  BlackjackDriver bj;
  bj.playCard(10);
  bj.playCard(9);
  EXPECT_EQ(bj.sim().output("stand"), Logic::One);
  bj.sim().setRset(true);
  bj.sim().step();
  bj.sim().setRset(false);
  bj.sim().step();  // start -> read
  bj.sim().step();  // read outputs visible
  EXPECT_EQ(bj.sim().output("hit"), Logic::One);  // reading again
}

}  // namespace
}  // namespace zeus::test

// Differential tests for the multi-core simulation farm (src/core/
// sim_farm.h): farm vs the scalar-oracle lane sims across the whole
// corpus, thread-count invariance of every observable (checksums, RANDOM
// stream positions, canonical SimError order, merged counters), the
// FarmSnapshot binary round-trip, resume bit-identity, and the seed-0
// RNG normalization parity between the scalar and batch evaluators.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/batch_sim.h"
#include "src/core/sim_farm.h"
#include "src/sim/snapshot.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

/// RANDOM draws, a REG trajectory and input-dependent contention — under
/// the farm's pseudo-random stimulus some lanes hit a AND b, so SimError
/// merge order is actually exercised (the corpus designs are fault-free).
const char* kRandomized = R"(
TYPE t = COMPONENT (IN en, a, b: boolean; OUT o, q: boolean) IS
  SIGNAL r: REG;
  SIGNAL m: multiplex;
BEGIN
  IF en THEN r.in := RANDOM() END;
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  o := r.out;
  q := m
END;
SIGNAL top: t;
)";

struct FarmFixture {
  Built built;
  SimGraph graph;

  FarmFixture(const std::string& src, const std::string& top)
      : built(buildOk(src, top)),
        graph(buildSimGraph(*built.design, built.comp->diags())) {
    EXPECT_FALSE(graph.hasCycle);
  }
};

void expectReportsEqual(const FarmReport& a, const FarmReport& b,
                        const std::string& what) {
  EXPECT_EQ(a.checksums, b.checksums) << what;
  EXPECT_EQ(a.rngStates, b.rngStates) << what;
  EXPECT_EQ(a.errors, b.errors) << what;
}

/// stats scaled block-wise: additive counters × n, watchdog margin kept.
EvalStats scaleStats(const EvalStats& s, uint64_t n) {
  EvalStats out = s;
  out.nodeFirings *= n;
  out.inputEvents *= n;
  out.sweeps *= n;
  out.netResolutions *= n;
  out.shortCircuitSkips *= n;
  out.contentionChecks *= n;
  out.epochResets *= n;
  return out;
}

TEST(Farm, MatchesScalarOracleAtEveryThreadCount) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 200;  // 4 blocks: 64+64+64+8, the last one partial
  opts.cycles = 24;
  opts.seed = 0xFEEDFACEull;
  const FarmReport oracle = runFarmScalarOracle(f.graph, opts);
  ASSERT_EQ(oracle.checksums.size(), 200u);
  // The stimulus provokes real contention on some lanes; without it the
  // canonical-merge assertions below would be vacuous.
  EXPECT_FALSE(oracle.errors.empty());

  FarmReport first;
  for (size_t threads : {1u, 2u, 4u}) {
    opts.threads = threads;
    FarmReport r = runFarm(f.graph, opts);
    expectReportsEqual(r, oracle,
                       "farm@" + std::to_string(threads) + " vs oracle");
    EXPECT_EQ(r.mergedChecksum(), oracle.mergedChecksum());
    if (threads == 1) {
      first = r;
    } else {
      // Merged counters are invariant in the thread count too.
      EXPECT_EQ(r.stats, first.stats)
          << "stats changed at " << threads << " threads";
    }
  }
}

TEST(Farm, ErrorsArriveInCanonicalOrder) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 128;
  opts.cycles = 32;
  opts.threads = 4;
  FarmReport r = runFarm(f.graph, opts);
  ASSERT_FALSE(r.errors.empty());
  for (size_t i = 1; i < r.errors.size(); ++i) {
    const SimError& a = r.errors[i - 1];
    const SimError& b = r.errors[i];
    const bool ordered =
        a.cycle < b.cycle ||
        (a.cycle == b.cycle &&
         (a.lane < b.lane || (a.lane == b.lane && a.netName <= b.netName)));
    EXPECT_TRUE(ordered) << "errors " << i - 1 << "/" << i << " out of order";
    EXPECT_GE(a.lane, 0) << "block-local lane escaped un-retagged";
  }
}

TEST(Farm, MergedCountersEqualBlocksTimesScalarRun) {
  FarmFixture f(kRandomized, "top");
  // One 64-lane block's counters must equal a scalar levelized run of the
  // same cycle count (the engine-invariance guarantee), so the merged
  // farm counters equal blocks × that run — regardless of lane fill.
  FarmOptions scalarOpts;
  scalarOpts.lanes = 1;
  scalarOpts.cycles = 16;
  const EvalStats perBlock = runFarm(f.graph, scalarOpts).stats;

  FarmOptions opts;
  opts.lanes = 150;  // 3 blocks: 64+64+22
  opts.cycles = 16;
  opts.threads = 2;
  FarmReport r = runFarm(f.graph, opts);
  EXPECT_EQ(r.stats, scaleStats(perBlock, 3));
}

TEST(Farm, RejectsBadOptions) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 0;
  EXPECT_THROW(runFarm(f.graph, opts), std::invalid_argument);
  opts.lanes = 64;
  opts.threads = 0;
  EXPECT_THROW(runFarm(f.graph, opts), std::invalid_argument);
  opts.threads = 1;
  opts.lanesPerBlock = 65;
  EXPECT_THROW(runFarm(f.graph, opts), std::invalid_argument);
}

TEST(Farm, SnapshotBinaryRoundTrip) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 96;
  opts.cycles = 12;
  opts.threads = 2;
  opts.checkpointAtCycle = 7;
  FarmSnapshot snap;
  bool saw = false;
  opts.onCheckpoint = [&](const FarmSnapshot& s) {
    snap = s;
    saw = true;
  };
  runFarm(f.graph, opts);
  ASSERT_TRUE(saw);
  EXPECT_EQ(snap.cycle, 7u);
  EXPECT_EQ(snap.totalLanes, 96u);
  ASSERT_EQ(snap.lanes.size(), 96u);

  std::vector<uint8_t> bytes = farmToBytes(snap);
  SnapshotKind kind;
  std::string err;
  ASSERT_TRUE(snapshotKindOfBytes(bytes.data(), bytes.size(), kind, err))
      << err;
  EXPECT_EQ(kind, SnapshotKind::FarmState);
  FarmSnapshot back;
  ASSERT_TRUE(farmFromBytes(bytes.data(), bytes.size(), back, err)) << err;
  EXPECT_EQ(back.designHash, snap.designHash);
  EXPECT_EQ(back.cycle, snap.cycle);
  EXPECT_EQ(back.seed, snap.seed);
  EXPECT_EQ(back.totalLanes, snap.totalLanes);
  EXPECT_EQ(back.lanesPerBlock, snap.lanesPerBlock);
  EXPECT_EQ(back.stats, snap.stats);
  EXPECT_EQ(back.checksums, snap.checksums);
  ASSERT_EQ(back.lanes.size(), snap.lanes.size());
  for (size_t l = 0; l < back.lanes.size(); ++l) {
    EXPECT_EQ(back.lanes[l].rngState, snap.lanes[l].rngState) << l;
    EXPECT_EQ(back.lanes[l].regValues, snap.lanes[l].regValues) << l;
    EXPECT_EQ(back.lanes[l].errors, snap.lanes[l].errors) << l;
  }

  // Truncations must fail cleanly, never crash (the fuzz contract).
  for (size_t cut : {size_t{0}, size_t{4}, size_t{9}, bytes.size() / 2,
                     bytes.size() - 1}) {
    FarmSnapshot junk;
    EXPECT_FALSE(farmFromBytes(bytes.data(), cut, junk, err)) << cut;
  }
}

TEST(Farm, ResumeIsBitIdenticalToStraightRun) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 96;
  opts.cycles = 20;
  opts.threads = 2;
  opts.seed = 0xABCDEFull;
  const FarmReport straight = runFarm(f.graph, opts);

  FarmOptions half = opts;
  half.checkpointAtCycle = 9;
  FarmSnapshot snap;
  half.onCheckpoint = [&](const FarmSnapshot& s) { snap = s; };
  runFarm(f.graph, half);
  ASSERT_EQ(snap.cycle, 9u);

  // Resume through the serialized form, at a different thread count.
  std::vector<uint8_t> bytes = farmToBytes(snap);
  FarmSnapshot restored;
  std::string err;
  ASSERT_TRUE(farmFromBytes(bytes.data(), bytes.size(), restored, err))
      << err;
  FarmOptions rest = opts;
  rest.threads = 4;
  const FarmReport resumed = runFarm(f.graph, rest, &restored);
  expectReportsEqual(resumed, straight, "resumed vs straight");
  EXPECT_EQ(resumed.stats, straight.stats);
  EXPECT_EQ(resumed.cycles, straight.cycles);
}

TEST(Farm, ResumeRejectsMismatchedSnapshots) {
  FarmFixture f(kRandomized, "top");
  FarmOptions opts;
  opts.lanes = 64;
  opts.cycles = 8;
  opts.checkpointAtCycle = 4;
  FarmSnapshot snap;
  opts.onCheckpoint = [&](const FarmSnapshot& s) { snap = s; };
  runFarm(f.graph, opts);

  FarmSnapshot bad = snap;
  bad.designHash ^= 1;
  EXPECT_THROW(runFarm(f.graph, opts, &bad), std::invalid_argument);
  bad = snap;
  bad.seed ^= 1;
  EXPECT_THROW(runFarm(f.graph, opts, &bad), std::invalid_argument);
  bad = snap;
  bad.totalLanes = 32;
  EXPECT_THROW(runFarm(f.graph, opts, &bad), std::invalid_argument);
  FarmOptions shorter = opts;
  shorter.cycles = 2;  // snapshot already past the requested end
  EXPECT_THROW(runFarm(f.graph, shorter, &snap), std::invalid_argument);
}

// A restored rngState of 0 must not absorb (xorshift(0) == 0 forever):
// the scalar evaluators substitute kDefaultRngSeed at evaluate time, and
// the batch evaluator normalizes restored lane states the same way, so a
// scalar and a batch lane resumed from the same zero-state snapshot stay
// bit-identical.
TEST(Farm, ZeroRngStateRestoresIdenticallyScalarAndBatch) {
  FarmFixture f(kRandomized, "top");

  Simulation scalar(f.graph, EvaluatorKind::Levelized);
  SimSnapshot snap = scalar.saveSnapshot();
  snap.rngState = 0;  // hand-built snapshot in the absorbing state

  scalar.restoreSnapshot(snap);
  BatchSimulation batch(f.graph, 4);
  batch.restoreSnapshot(2, snap);

  const std::vector<Logic> on(1, Logic::One);
  for (int c = 0; c < 8; ++c) {
    scalar.setInput("en", on);
    batch.setInput(2, "en", on);
    scalar.step(1);
    batch.step(1);
    EXPECT_EQ(scalar.netValueByName("top.o"), batch.netValueByName(2, "top.o"))
        << "cycle " << c;
  }
  EXPECT_EQ(scalar.randomState(), batch.randomState(2));
  EXPECT_NE(batch.randomState(2), 0u) << "lane stuck in the absorbing state";
}

// Full-corpus differential: every built-in program through the farm at
// 1 and 2 threads against the scalar oracle.  Partial trailing blocks
// (96 = 64 + 32) ride along on every entry.
class FarmCorpus : public ::testing::TestWithParam<corpus::CorpusEntry> {};

std::string entryName(
    const ::testing::TestParamInfo<corpus::CorpusEntry>& info) {
  std::string n = info.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(All, FarmCorpus, ::testing::ValuesIn(corpus::all()),
                         entryName);

TEST_P(FarmCorpus, FarmMatchesScalarOracle) {
  std::string top;
  const std::string src = corpusSource(GetParam(), &top);
  FarmFixture f(src, top);
  if (f.graph.hasCycle) GTEST_SKIP() << "cyclic design";
  FarmOptions opts;
  opts.lanes = 96;
  opts.cycles = 8;
  const FarmReport oracle = runFarmScalarOracle(f.graph, opts);
  for (size_t threads : {1u, 2u}) {
    opts.threads = threads;
    FarmReport r = runFarm(f.graph, opts);
    expectReportsEqual(r, oracle,
                       std::string(GetParam().name) + " @" +
                           std::to_string(threads) + " threads");
  }
}

}  // namespace
}  // namespace zeus::test

// E3 + E4: binary trees (iterative and recursive) and the H-tree layout.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string treeSource(const char* body, int n) {
  return std::string(body) + "SIGNAL a: tree(" + std::to_string(n) + ");\n";
}

class TreeSize : public ::testing::TestWithParam<int> {};

TEST_P(TreeSize, IterativeBroadcasts) {
  const int n = GetParam();
  Built b = buildOk(treeSource(kTreeIterative, n), "a");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  for (Logic v : {Logic::Zero, Logic::One, Logic::Undef}) {
    sim.setInput("in", v);
    sim.step();
    for (Logic leaf : sim.outputBits("leaf")) ASSERT_EQ(leaf, v);
  }
  EXPECT_TRUE(sim.errors().empty());
}

TEST_P(TreeSize, RecursiveBroadcasts) {
  const int n = GetParam();
  Built b = buildOk(treeSource(kTreeRecursive, n), "a");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("in", Logic::One);
  sim.step();
  std::vector<Logic> leaves = sim.outputBits("leaf");
  ASSERT_EQ(leaves.size(), static_cast<size_t>(n));
  for (Logic leaf : leaves) ASSERT_EQ(leaf, Logic::One);
}

TEST_P(TreeSize, IterativeAndRecursiveHaveSameNodeCount) {
  const int n = GetParam();
  Built it = buildOk(treeSource(kTreeIterative, n), "a");
  Built rec = buildOk(treeSource(kTreeRecursive, n), "a");
  ASSERT_NE(it.design, nullptr);
  ASSERT_NE(rec.design, nullptr);
  // Both structures contain n-1 broadcast nodes; count REG-free q cells by
  // counting gate nodes: each q has two Buf drivers (out1, out2).
  auto countBufs = [](const Design& d) {
    size_t bufs = 0;
    for (const Node& node : d.netlist.nodes()) {
      if (node.op == NodeOp::Buf) ++bufs;
    }
    return bufs;
  };
  // The recursive variant adds forwarding buffers for leaf := left.leaf[i]
  // (log-depth wiring), so compare the simulated behaviour and the q-cell
  // count via layout instead: both must broadcast (checked above) and the
  // iterative q count is exactly n-1.
  EXPECT_GE(countBufs(*rec.design), countBufs(*it.design) - 2 * (size_t)n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreeSize, ::testing::Values(4, 8, 16, 64));

TEST(Tree, RecursiveLayoutShape) {
  Built b = buildOk(treeSource(kTreeRecursive, 8), "a");
  ASSERT_NE(b.design, nullptr);
  LayoutResult layout = solveLayout(*b.design, b.comp->diags());
  // root above two half-trees: width n/2 cells, height log2(n) rows.
  EXPECT_EQ(layout.bounds.w, 4);
  EXPECT_EQ(layout.bounds.h, 3);
  EXPECT_EQ(layout.leafCount(), 7u);  // n-1 q cells
}

class HtreeSize : public ::testing::TestWithParam<int> {};

TEST_P(HtreeSize, LinearArea) {
  const int n = GetParam();
  std::string src =
      std::string(kHtree) + "SIGNAL a: htree(" + std::to_string(n) + ");\n";
  Built b = buildOk(src, "a");
  ASSERT_NE(b.design, nullptr);
  LayoutResult layout = solveLayout(*b.design, b.comp->diags());
  // The H-tree of n leaves occupies a sqrt(n) × sqrt(n) square: linear
  // area — the claim the paper makes for this example.
  int64_t side = 1;
  while (side * side < n) side *= 2;
  EXPECT_EQ(layout.bounds.w, side);
  EXPECT_EQ(layout.bounds.h, side);
  EXPECT_EQ(layout.bounds.area(), static_cast<int64_t>(n));
  std::string overlap;
  EXPECT_FALSE(layout.hasOverlaps(&overlap)) << overlap;
}

INSTANTIATE_TEST_SUITE_P(Sizes, HtreeSize,
                         ::testing::Values(4, 16, 64, 256));

TEST(Htree, AliasedOutputIsHighImpedance) {
  std::string src = std::string(kHtree) + "SIGNAL a: htree(16);\n";
  Built b = buildOk(src, "a");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("in", Logic::One);
  sim.step();
  // No leaf drives the shared multiplex bus in the paper's skeleton; the
  // aliased class resolves to NOINFL.
  EXPECT_EQ(sim.output("out"), Logic::NoInfl);
  EXPECT_TRUE(sim.errors().empty());
}

}  // namespace
}  // namespace zeus::test

// §6.3 "Fig. Snake": serpentine layout with alternating directions of
// separation; the chain is one long shift register.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string snakeSource(int rows, int cols) {
  return std::string(corpus::kSnake) + "SIGNAL s: snake(" +
         std::to_string(rows) + "," + std::to_string(cols) + ");\n";
}

TEST(Snake, LayoutIsARectangleWithoutOverlaps) {
  Built b = buildOk(snakeSource(4, 6), "s");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  EXPECT_EQ(lr.bounds.w, 6);
  EXPECT_EQ(lr.bounds.h, 4);
  EXPECT_EQ(lr.leafCount(), 24u);
  std::string overlap;
  EXPECT_FALSE(lr.hasOverlaps(&overlap)) << overlap;
}

TEST(Snake, RowsAlternateDirection) {
  Built b = buildOk(snakeSource(2, 3), "s");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  // Row 1 runs left-to-right, row 2 right-to-left; geometrically both end
  // up occupying the same 3 columns, so the *chain neighbours* at the row
  // turn sit in the same column: c[1,3] above c[2,1].
  const Rect& endOfRow1 = lr.find("s.c[1][3]")->rect;
  const Rect& startOfRow2 = lr.find("s.c[2][1]")->rect;
  EXPECT_EQ(endOfRow1.x, startOfRow2.x);
  EXPECT_LT(endOfRow1.y, startOfRow2.y);
  // Whereas row starts are at opposite corners of their rows.
  const Rect& startOfRow1 = lr.find("s.c[1][1]")->rect;
  EXPECT_EQ(startOfRow1.x, 0);
  EXPECT_EQ(startOfRow2.x, 2);
}

TEST(Snake, ChainDelaysByCellCount) {
  const int rows = 3, cols = 4;
  Built b = buildOk(snakeSource(rows, cols), "s");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInput("head", Logic::One);
  // The head value latched at the end of cycle 0 emerges at the tail
  // during cycle rows*cols (one register per cell).
  sim.step(rows * cols);
  EXPECT_EQ(sim.output("tail"), Logic::Undef);
  sim.step();
  EXPECT_EQ(sim.output("tail"), Logic::One);
  EXPECT_TRUE(sim.errors().empty());
}

}  // namespace
}  // namespace zeus::test

// E5: the recursive routing network translated from HISDL (paper §4.2).
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string routingSource(int n) {
  return std::string(kRoutingNetwork) + "SIGNAL net: routingnetwork(" +
         std::to_string(n) + ");\n";
}

class RoutingSize : public ::testing::TestWithParam<int> {};

TEST_P(RoutingSize, ElaboratesRecursively) {
  const int n = GetParam();
  Built b = buildOk(routingSource(n), "net");
  ASSERT_NE(b.design, nullptr);
  // Banyan structure: (n/2) * log2(n) routers.
  int levels = 0;
  for (int m = n; m > 1; m /= 2) ++levels;
  size_t routers = 0;
  std::function<void(const InstanceData&)> walk =
      [&](const InstanceData& inst) {
        if (inst.type && inst.type->name.rfind("router", 0) == 0) ++routers;
        for (const auto& [name, m] : inst.members) {
          std::vector<const Obj*> stack{&m.obj};
          while (!stack.empty()) {
            const Obj* o = stack.back();
            stack.pop_back();
            if (o->kind == ObjKind::Array || o->kind == ObjKind::Record) {
              for (const Obj& e : o->elems) stack.push_back(&e);
            } else if (o->kind == ObjKind::Instance && o->inst) {
              walk(*o->inst);
            }
          }
        }
      };
  walk(*b.design->top);
  EXPECT_EQ(routers, static_cast<size_t>(n / 2 * levels));
}

TEST_P(RoutingSize, PassThroughRouting) {
  // With straight-through routers, data appears at the bit-reversed
  // output permutation of a banyan/butterfly network built this way; we
  // verify data integrity: each input word appears at exactly one output.
  const int n = GetParam();
  Built b = buildOk(routingSource(n), "net");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  // Drive each input channel with its own index + 100.
  std::vector<Logic> bits(static_cast<size_t>(n) * 10);
  for (int i = 0; i < n; ++i) {
    uint64_t word = static_cast<uint64_t>(i) + 100;
    for (int k = 0; k < 10; ++k) {
      bits[static_cast<size_t>(i) * 10 + k] =
          logicFromBool((word >> k) & 1);
    }
  }
  sim.setInput("input", bits);
  sim.step();
  std::vector<Logic> out = sim.outputBits("output");
  ASSERT_EQ(out.size(), bits.size());
  std::vector<int> seen(n, 0);
  for (int i = 0; i < n; ++i) {
    uint64_t word = 0;
    for (int k = 0; k < 10; ++k) {
      ASSERT_TRUE(isDefined(out[static_cast<size_t>(i) * 10 + k]));
      if (out[static_cast<size_t>(i) * 10 + k] == Logic::One)
        word |= uint64_t{1} << k;
    }
    ASSERT_GE(word, 100u);
    ASSERT_LT(word, 100u + static_cast<uint64_t>(n));
    seen[word - 100]++;
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(seen[i], 1) << "input " << i << " must reach exactly one "
                          << "output";
  }
  EXPECT_TRUE(sim.errors().empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, RoutingSize, ::testing::Values(2, 4, 8, 16));

}  // namespace
}  // namespace zeus::test

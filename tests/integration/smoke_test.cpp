// End-to-end smoke tests: the paper's Fig. 3.2.2 half/full adder compiled,
// elaborated and simulated through the public API.
#include <gtest/gtest.h>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

const char* kFullAdder = R"(
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
  s := XOR(a,b);
  cout := AND(a,b)
END;

fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
  SIGNAL h1,h2: halfadder;
BEGIN
  h1(a,b,*,h2.a);
  h2(h1.s,cin,*,s);
  cout := OR(h1.cout,h2.cout)
END;

SIGNAL add: fulladder;
)";

TEST(Smoke, FullAdderCompiles) {
  Built b = buildOk(kFullAdder, "add");
  ASSERT_NE(b.design, nullptr);
  EXPECT_EQ(b.design->ports.size(), 5u);
}

TEST(Smoke, FullAdderTruthTable) {
  Built b = buildOk(kFullAdder, "add");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle) << b.comp->diagnosticsText();
  Simulation sim(g);
  for (int a = 0; a <= 1; ++a) {
    for (int x = 0; x <= 1; ++x) {
      for (int c = 0; c <= 1; ++c) {
        sim.setInput("a", logicFromBool(a));
        sim.setInput("b", logicFromBool(x));
        sim.setInput("cin", logicFromBool(c));
        sim.step();
        int total = a + x + c;
        EXPECT_EQ(sim.output("s"), logicFromBool(total & 1))
            << "a=" << a << " b=" << x << " cin=" << c;
        EXPECT_EQ(sim.output("cout"), logicFromBool(total >= 2))
            << "a=" << a << " b=" << x << " cin=" << c;
      }
    }
  }
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Smoke, FullAdderNaiveMatchesFiring) {
  Built b = buildOk(kFullAdder, "add");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation fire(g, EvaluatorKind::Firing);
  Simulation naive(g, EvaluatorKind::Naive);
  for (int v = 0; v < 8; ++v) {
    for (Simulation* sim : {&fire, &naive}) {
      sim->setInput("a", logicFromBool(v & 1));
      sim->setInput("b", logicFromBool((v >> 1) & 1));
      sim->setInput("cin", logicFromBool((v >> 2) & 1));
      sim->step();
    }
    EXPECT_EQ(fire.output("s"), naive.output("s")) << v;
    EXPECT_EQ(fire.output("cout"), naive.output("cout")) << v;
  }
}

TEST(Smoke, UndefinedInputsPropagate) {
  Built b = buildOk(kFullAdder, "add");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  // a undefined, b = 0: XOR undefined, AND fires 0 by short circuit.
  sim.setInput("b", Logic::Zero);
  sim.setInput("cin", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.output("s"), Logic::Undef);
  EXPECT_EQ(sim.output("cout"), Logic::Zero);  // needs the short circuit
}

}  // namespace
}  // namespace zeus::test

// E1: the ripple-carry adder family (paper §10 "Adders", Fig. Adder).
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string adderSource(int width) {
  return std::string(kAdders) + "SIGNAL adder: rippleCarry(" +
         std::to_string(width) + ");\n";
}

TEST(Adder, ElaboratesWithLayout) {
  Built b = buildOk(adderSource(4), "adder");
  ASSERT_NE(b.design, nullptr);
  LayoutResult layout = solveLayout(*b.design, b.comp->diags());
  // Four full adders side by side.
  EXPECT_EQ(layout.bounds.w, 4);
  EXPECT_EQ(layout.bounds.h, 1);
  EXPECT_EQ(layout.leafCount(), 4u);
  std::string overlap;
  EXPECT_FALSE(layout.hasOverlaps(&overlap)) << overlap;
}

TEST(Adder, AddsExhaustively4Bit) {
  Built b = buildOk(adderSource(4), "adder");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  for (uint64_t a = 0; a < 16; ++a) {
    for (uint64_t x = 0; x < 16; ++x) {
      for (uint64_t c = 0; c <= 1; ++c) {
        sim.setInputUint("a", a);
        sim.setInputUint("b", x);
        sim.setInput("cin", logicFromBool(c));
        sim.step();
        uint64_t total = a + x + c;
        ASSERT_EQ(sim.outputUint("s").value_or(999), total & 15)
            << a << "+" << x << "+" << c;
        ASSERT_EQ(sim.output("cout"), logicFromBool(total >= 16));
      }
    }
  }
  EXPECT_TRUE(sim.errors().empty());
}

class AdderWidth : public ::testing::TestWithParam<int> {};

TEST_P(AdderWidth, RandomOperands) {
  const int width = GetParam();
  Built b = buildOk(adderSource(width), "adder");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  uint64_t rng = 12345;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const uint64_t mask =
      width >= 64 ? ~uint64_t{0} : (uint64_t{1} << width) - 1;
  for (int trial = 0; trial < 20; ++trial) {
    uint64_t a = next() & mask;
    uint64_t x = next() & mask;
    sim.setInputUint("a", a);
    sim.setInputUint("b", x);
    sim.setInput("cin", Logic::Zero);
    sim.step();
    ASSERT_EQ(sim.outputUint("s").value_or(~0ull), (a + x) & mask);
    ASSERT_EQ(sim.output("cout"), logicFromBool(((a + x) >> width) & 1));
  }
  EXPECT_TRUE(sim.errors().empty());
}

INSTANTIATE_TEST_SUITE_P(Widths, AdderWidth,
                         ::testing::Values(2, 3, 8, 16, 32, 48));

TEST(Adder, SequentialAnnotationAccepted) {
  // The paper's SEQUENTIAL carries the actual carry-chain order; the
  // compatibility check must not warn.
  Built b = buildOk(adderSource(8), "adder");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  checkSequentialOrder(*b.design, g, b.comp->diags());
  EXPECT_FALSE(b.comp->diags().has(Diag::SequentialOrderViolated))
      << b.comp->diagnosticsText();
}

TEST(Adder, ReversedSequentialAnnotationWarns) {
  // Claiming the carry chain runs high-to-low contradicts the data flow.
  std::string src = std::string(kAdders) + R"(
bad = COMPONENT (IN a,b: ARRAY[1..4] OF boolean; IN cin: boolean;
                 OUT cout: boolean; OUT s: ARRAY[1..4] OF boolean) IS
  SIGNAL add: ARRAY[1..4] OF fulladder;
BEGIN
  SEQUENTIAL
    add[4](a[4],b[4],*,cout,s[4]);
    FOR i := 3 DOWNTO 2 DO SEQUENTIALLY
      add[i](a[i],b[i],add[i-1].cout,add[i+1].cin,s[i]);
    END;
    add[1](a[1],b[1],cin,*,s[1]);
  END
END;
SIGNAL badder: bad;
)";
  Built b = buildOk(src, "badder");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  checkSequentialOrder(*b.design, g, b.comp->diags());
  EXPECT_TRUE(b.comp->diags().has(Diag::SequentialOrderViolated));
}

}  // namespace
}  // namespace zeus::test

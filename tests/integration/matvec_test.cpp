// GF(2) matrix-vector product (§1's systolic citations / §9's cellular
// arrays): the combinational n×n array and the bit-serial dot product.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string matvecSource(int n) {
  return std::string(corpus::kMatVec) + "SIGNAL m: matvec(" +
         std::to_string(n) + ");\n";
}

class MatVecSize : public ::testing::TestWithParam<int> {};

TEST_P(MatVecSize, MatchesReferenceOverGF2) {
  const int n = GetParam();
  Built b = buildOk(matvecSource(n), "m");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  uint64_t rng = 0xFACE;
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<Logic> abits(static_cast<size_t>(n) * n);
    std::vector<uint64_t> arows(n, 0);
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        bool bit = rng & 1;
        abits[static_cast<size_t>(i) * n + j] = logicFromBool(bit);
        if (bit) arows[i] |= uint64_t{1} << j;
      }
    }
    uint64_t x = rng & ((uint64_t{1} << n) - 1);
    sim.setInput("a", abits);
    sim.setInputUint("x", x);
    sim.step();
    uint64_t got = sim.outputUint("y").value_or(~0ull);
    uint64_t expect = 0;
    for (int i = 0; i < n; ++i) {
      expect |= static_cast<uint64_t>(__builtin_parityll(arows[i] & x))
                << i;
    }
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
  EXPECT_TRUE(sim.errors().empty());
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatVecSize, ::testing::Values(2, 3, 5, 8));

TEST(MatVec, LayoutIsAnNxNGrid) {
  Built b = buildOk(matvecSource(4), "m");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  EXPECT_EQ(lr.bounds.w, 4);
  EXPECT_EQ(lr.bounds.h, 4);
  EXPECT_EQ(lr.leafCount(), 16u);
}

TEST(MatVec, SerialDotProduct) {
  std::string src = std::string(corpus::kMatVec) + "SIGNAL d: sdot;\n";
  Built b = buildOk(src, "d");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  // Two back-to-back dot products over GF(2).
  auto stream = [&](const std::vector<std::pair<int, int>>& pairs) {
    for (size_t i = 0; i < pairs.size(); ++i) {
      sim.setInput("a", logicFromBool(pairs[i].first));
      sim.setInput("x", logicFromBool(pairs[i].second));
      sim.setInput("clear", logicFromBool(i == 0));
      sim.step();
    }
  };
  // <1,1>+<1,0>+<1,1> = 1 XOR 0 XOR 1 = 0
  stream({{1, 1}, {1, 0}, {1, 1}});
  // Start the next sum; this latches the previous result.
  stream({{1, 1}, {0, 1}, {1, 1}});
  EXPECT_EQ(sim.output("y"), Logic::Zero);
  // <1,1>+<0,1>+<1,1> = 1 XOR 0 XOR 1 = 0 ... stream a third to latch:
  stream({{1, 1}});
  EXPECT_EQ(sim.output("y"), Logic::Zero);
  EXPECT_TRUE(sim.errors().empty());
}

}  // namespace
}  // namespace zeus::test

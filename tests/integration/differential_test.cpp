// Differential test: the blackjack FSM and a parameterized ripple-carry
// adder are driven with random stimulus for many cycles through the
// naive, firing and levelized evaluators plus the 64-lane batch engine,
// asserting identical net values, contention errors and register
// trajectories on every lane and every cycle.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <tuple>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

/// Per lane: one batch lane plus three scalar simulations (firing, naive,
/// levelized) fed the same stimulus.  Agreement is checked net-by-net.
class DifferentialRig {
 public:
  DifferentialRig(const std::string& src, const std::string& top,
                  size_t lanes)
      : built_(buildOk(src, top)),
        graph_(buildSimGraph(*built_.design, built_.comp->diags())),
        lanes_(lanes),
        batch_(graph_, lanes) {
    EXPECT_FALSE(graph_.hasCycle);
    scalars_.reserve(lanes * 3);
    for (size_t l = 0; l < lanes; ++l) {
      for (EvaluatorKind k : {EvaluatorKind::Firing, EvaluatorKind::Naive,
                              EvaluatorKind::Levelized}) {
        scalars_.emplace_back(graph_, k);
      }
    }
  }

  Simulation& scalar(size_t lane, size_t which) {
    return scalars_[lane * 3 + which];
  }

  void setInput(size_t lane, const std::string& port, Logic v) {
    batch_.setInput(lane, port, v);
    for (size_t j = 0; j < 3; ++j) scalar(lane, j).setInput(port, v);
  }

  void setInputUint(size_t lane, const std::string& port, uint64_t v) {
    batch_.setInputUint(lane, port, v);
    for (size_t j = 0; j < 3; ++j) scalar(lane, j).setInputUint(port, v);
  }

  void setRset(bool active) {
    batch_.setRset(active);
    for (Simulation& s : scalars_) s.setRset(active);
  }

  void step() {
    batch_.step();
    for (Simulation& s : scalars_) s.step();
  }

  /// Every net value and every register must agree across the three
  /// scalar evaluators and the matching batch lane.
  void checkAgreement(int cyc) {
    const Netlist& nl = built_.design->netlist;
    for (size_t l = 0; l < lanes_; ++l) {
      Simulation& ref = scalar(l, 0);
      std::vector<Logic> refRegs = ref.saveRegisters();
      for (size_t j = 1; j < 3; ++j) {
        ASSERT_EQ(refRegs, scalar(l, j).saveRegisters())
            << "registers, lane " << l << " evaluator " << j << " cycle "
            << cyc;
      }
      ASSERT_EQ(refRegs, batch_.saveRegisters(l))
          << "registers, batch lane " << l << " cycle " << cyc;
      for (NetId n = 0; n < nl.netCount(); ++n) {
        Logic want = ref.netValue(n);
        for (size_t j = 1; j < 3; ++j) {
          ASSERT_EQ(want, scalar(l, j).netValue(n))
              << "net " << nl.net(n).name << " lane " << l << " evaluator "
              << j << " cycle " << cyc;
        }
        ASSERT_EQ(want, batch_.netValue(l, n))
            << "net " << nl.net(n).name << " batch lane " << l << " cycle "
            << cyc;
      }
    }
  }

  /// Contention faults must agree as (cycle, net) multisets — evaluators
  /// legitimately discover collisions in different orders.
  void checkErrors() {
    using Key = std::tuple<uint64_t, std::string>;
    auto keysOf = [](const std::vector<SimError>& errs, int32_t lane) {
      std::vector<Key> keys;
      for (const SimError& e : errs) {
        if (lane >= 0 && e.lane != lane) continue;
        keys.emplace_back(e.cycle, e.netName);
      }
      std::sort(keys.begin(), keys.end());
      return keys;
    };
    for (size_t l = 0; l < lanes_; ++l) {
      std::vector<Key> want = keysOf(scalar(l, 0).errors(), -1);
      for (size_t j = 1; j < 3; ++j) {
        EXPECT_EQ(want, keysOf(scalar(l, j).errors(), -1))
            << "errors, lane " << l << " evaluator " << j;
      }
      EXPECT_EQ(want, keysOf(batch_.errors(), static_cast<int32_t>(l)))
          << "errors, batch lane " << l;
    }
  }

  BatchSimulation& batch() { return batch_; }

 private:
  Built built_;
  SimGraph graph_;
  size_t lanes_;
  BatchSimulation batch_;
  std::vector<Simulation> scalars_;
};

TEST(Differential, RippleCarryAdderAllEvaluatorsAllLanes) {
  constexpr int kWidth = 12;
  constexpr size_t kLanes = 64;
  constexpr int kCycles = 16;
  DifferentialRig rig(
      std::string(kAdders) + "SIGNAL adder: rippleCarry(12);\n", "adder",
      kLanes);
  std::mt19937_64 rng(7);
  for (int cyc = 0; cyc < kCycles; ++cyc) {
    std::vector<uint64_t> as(kLanes), bs(kLanes), cins(kLanes);
    for (size_t l = 0; l < kLanes; ++l) {
      as[l] = rng() & ((1u << kWidth) - 1);
      bs[l] = rng() & ((1u << kWidth) - 1);
      cins[l] = rng() & 1;
      rig.setInputUint(l, "a", as[l]);
      rig.setInputUint(l, "b", bs[l]);
      rig.setInput(l, "cin", logicFromBool(cins[l]));
    }
    rig.step();
    rig.checkAgreement(cyc);
    // Ground truth on every lane, not just cross-evaluator agreement.
    for (size_t l = 0; l < kLanes; ++l) {
      uint64_t sum = as[l] + bs[l] + cins[l];
      ASSERT_EQ(rig.batch().outputUint(l, "s"),
                std::optional<uint64_t>(sum & ((1u << kWidth) - 1)))
          << "lane " << l << " cycle " << cyc;
      ASSERT_EQ(rig.batch().output(l, "cout"),
                logicFromBool((sum >> kWidth) & 1));
    }
  }
  rig.checkErrors();
}

TEST(Differential, BlackjackFsmAllEvaluatorsAllLanes) {
  constexpr size_t kLanes = 8;
  constexpr int kCycles = 48;
  DifferentialRig rig(kBlackjack, "bj", kLanes);
  // Bring every engine out of reset the same way.
  for (size_t l = 0; l < kLanes; ++l) {
    rig.setInput(l, "ycard", Logic::Zero);
    rig.setInputUint(l, "value", 0);
  }
  rig.setRset(true);
  rig.step();
  rig.setRset(false);
  // Random card stream per lane: ycard toggles at random, values 0..31.
  std::mt19937_64 rng(11);
  for (int cyc = 0; cyc < kCycles; ++cyc) {
    for (size_t l = 0; l < kLanes; ++l) {
      rig.setInput(l, "ycard", logicFromBool(rng() & 1));
      rig.setInputUint(l, "value", rng() % 32);
    }
    rig.step();
    rig.checkAgreement(cyc);
  }
  rig.checkErrors();
}

// The batch engine fires every node and resolves every net once per
// evaluated cycle with one word-parallel operation covering all lanes, so
// its counter totals must equal a scalar levelized run of the same cycle
// count — and contention checks count the static multi-driven property,
// not per-lane value accidents, so they cannot drift between engines.
void checkCounterTotals(const std::string& src, const std::string& top,
                        uint64_t cycles, bool pulseRset,
                        bool optimize = false) {
  Built b = buildOk(src, top);
  if (optimize) {
    // Counter invariance must survive -O1: the pipeline recomputes
    // NetInfo (multiDriven in particular) on the rebuilt graph, and the
    // contentionChecks counter is derived from that static flag — a
    // stale bit would make scalar and batch totals drift apart.
    OptReport rep = b.comp->optimize(*b.design);
    ASSERT_TRUE(rep.ran);
    ASSERT_TRUE(rep.verified) << rep.verifyError;
  }
  SimGraph graph = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(graph.hasCycle);
  Simulation scalar(graph, EvaluatorKind::Levelized);
  BatchSimulation batch(graph, BatchSimulation::kMaxLanes);

  std::mt19937_64 rng(23);
  auto drive = [&]() {
    for (const Port& p : b.design->ports) {
      if (p.mode != ast::ParamMode::In) continue;
      uint64_t v = rng();
      scalar.setInputUint(p.name, v);
      for (size_t l = 0; l < batch.lanes(); ++l) {
        batch.setInputUint(l, p.name, rng());  // lanes diverge on purpose
      }
    }
  };
  if (pulseRset) {
    drive();
    scalar.setRset(true);
    batch.setRset(true);
    scalar.step();
    batch.step();
    scalar.setRset(false);
    batch.setRset(false);
  }
  for (uint64_t c = 0; c < cycles; ++c) {
    drive();
    scalar.step();
    batch.step();
  }

  metrics::SimCounters sc = scalar.metricsCounters();
  metrics::SimCounters bc = batch.metricsCounters();
  EXPECT_EQ(sc.evaluator, "levelized");
  EXPECT_EQ(bc.evaluator, "batch");
  EXPECT_EQ(sc.cycles, bc.cycles);
  EXPECT_EQ(bc.lanes, BatchSimulation::kMaxLanes);
  EXPECT_EQ(bc.laneCycles, bc.cycles * bc.lanes);
  // The per-lane totals: firing, resolution, contention-check and
  // epoch-reset counts must be identical across the two engines.
  EXPECT_EQ(sc.nodeFirings, bc.nodeFirings);
  EXPECT_EQ(sc.netResolutions, bc.netResolutions);
  EXPECT_EQ(sc.contentionChecks, bc.contentionChecks);
  EXPECT_EQ(sc.epochResets, bc.epochResets);
  EXPECT_GT(sc.nodeFirings, 0u);
  EXPECT_GT(sc.netResolutions, 0u);
}

TEST(Differential, AdderScalarAndBatchCounterTotalsAgree) {
  checkCounterTotals(
      std::string(kAdders) + "SIGNAL adder: rippleCarry(12);\n", "adder",
      /*cycles=*/16, /*pulseRset=*/false);
}

TEST(Differential, BlackjackScalarAndBatchCounterTotalsAgree) {
  checkCounterTotals(kBlackjack, "bj", /*cycles=*/32, /*pulseRset=*/true);
}

TEST(Differential, AdderCounterTotalsAgreeAtO1) {
  checkCounterTotals(
      std::string(kAdders) + "SIGNAL adder: rippleCarry(12);\n", "adder",
      /*cycles=*/16, /*pulseRset=*/false, /*optimize=*/true);
}

TEST(Differential, BlackjackCounterTotalsAgreeAtO1) {
  checkCounterTotals(kBlackjack, "bj", /*cycles=*/32, /*pulseRset=*/true,
                     /*optimize=*/true);
}

// A design exercising everything a checkpoint must capture: RANDOM draws,
// a REG trajectory, and input-dependent multiplex contention (SimErrors).
const char* kResumable = R"(
TYPE t = COMPONENT (IN en, a, b: boolean; OUT o, q: boolean) IS
  SIGNAL r: REG;
  SIGNAL m: multiplex;
BEGIN
  IF en THEN r.in := RANDOM() END;
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  o := r.out;
  q := m
END;
SIGNAL top: t;
)";

struct Stimulus {
  Logic en, a, b;
};

std::vector<Stimulus> randomStimulus(int cycles, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<Stimulus> s(cycles);
  for (Stimulus& x : s) {
    x.en = logicFromBool(rng() & 1);
    x.a = logicFromBool(rng() & 1);
    x.b = logicFromBool(rng() & 1);
  }
  return s;
}

void drive(Simulation& sim, const Stimulus& s) {
  sim.setInput("en", s.en);
  sim.setInput("a", s.a);
  sim.setInput("b", s.b);
  sim.step();
}

/// Interrupt-at-cycle-k resume must be bit-identical to the straight run:
/// net values, registers, RANDOM draws, SimErrors, the cycle count and
/// every evaluator counter.  That is exactly what saveRegisters() alone
/// cannot provide (its documented partial-state contract), so this test
/// routes through the full SimSnapshot.
TEST(Differential, SnapshotResumeIsBitIdenticalOnEveryEvaluator) {
  constexpr int kCycles = 24;
  constexpr int kStopAt = 10;
  std::vector<Stimulus> stim = randomStimulus(kCycles, 99);
  for (EvaluatorKind k : {EvaluatorKind::Firing, EvaluatorKind::Naive,
                          EvaluatorKind::Levelized}) {
    Built b = buildOk(kResumable, "top");
    SimGraph g = buildSimGraph(*b.design, b.comp->diags());
    ASSERT_FALSE(g.hasCycle);

    Simulation straight(g, k);
    for (int c = 0; c < kCycles; ++c) drive(straight, stim[c]);
    ASSERT_FALSE(straight.errors().empty()) << "stimulus never contended";

    Simulation first(g, k);
    for (int c = 0; c < kStopAt; ++c) drive(first, stim[c]);
    SimSnapshot snap = first.saveSnapshot();
    Simulation resumed(g, k);
    resumed.restoreSnapshot(snap);
    for (int c = kStopAt; c < kCycles; ++c) drive(resumed, stim[c]);

    EXPECT_EQ(resumed.cycle(), straight.cycle());
    EXPECT_EQ(resumed.errors(), straight.errors());
    EXPECT_TRUE(resumed.stats() == straight.stats())
        << "evaluator counters diverged, kind " << static_cast<int>(k);
    EXPECT_EQ(resumed.saveRegisters(), straight.saveRegisters());
    const Netlist& nl = b.design->netlist;
    for (NetId n = 0; n < nl.netCount(); ++n) {
      ASSERT_EQ(resumed.netValue(n), straight.netValue(n))
          << nl.net(n).name << " kind " << static_cast<int>(k);
    }
    metrics::SimCounters rc = resumed.metricsCounters();
    metrics::SimCounters sc = straight.metricsCounters();
    EXPECT_EQ(rc.cycles, sc.cycles);
    EXPECT_EQ(rc.nodeFirings, sc.nodeFirings);
    EXPECT_EQ(rc.netResolutions, sc.netResolutions);
    EXPECT_EQ(rc.faults, sc.faults);
    EXPECT_EQ(rc.contentionFaults, sc.contentionFaults);
  }
}

/// Scalar snapshots restore into batch lanes and vice versa: the same
/// interrupted run continues bit-identically in the other engine.
TEST(Differential, SnapshotsInterchangeBetweenScalarAndBatchLanes) {
  constexpr int kCycles = 20;
  constexpr int kStopAt = 8;
  std::vector<Stimulus> stim = randomStimulus(kCycles, 123);
  Built b = buildOk(kResumable, "top");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);

  Simulation straight(g, EvaluatorKind::Levelized);
  for (int c = 0; c < kCycles; ++c) drive(straight, stim[c]);

  // Scalar -> batch lane 2.
  Simulation first(g, EvaluatorKind::Levelized);
  for (int c = 0; c < kStopAt; ++c) drive(first, stim[c]);
  BatchSimulation batch(g, 4);
  batch.restoreSnapshot(2, first.saveSnapshot());
  EXPECT_EQ(batch.cycle(), static_cast<uint64_t>(kStopAt));
  for (int c = kStopAt; c < kCycles; ++c) {
    batch.setInput(2, "en", stim[c].en);
    batch.setInput(2, "a", stim[c].a);
    batch.setInput(2, "b", stim[c].b);
    batch.step();
  }
  const Netlist& nl = b.design->netlist;
  for (NetId n = 0; n < nl.netCount(); ++n) {
    ASSERT_EQ(batch.netValue(2, n), straight.netValue(n)) << nl.net(n).name;
  }
  // The lane's errors match the straight scalar run as (cycle, net) pairs.
  auto laneKeys = [](const std::vector<SimError>& errs, int32_t lane) {
    std::vector<std::pair<uint64_t, std::string>> keys;
    for (const SimError& e : errs) {
      if (lane >= 0 && e.lane != lane) continue;
      keys.emplace_back(e.cycle, e.netName);
    }
    std::sort(keys.begin(), keys.end());
    return keys;
  };
  EXPECT_EQ(laneKeys(batch.errors(), 2), laneKeys(straight.errors(), -1));

  // Batch lane -> scalar.
  BatchSimulation bfirst(g, 4);
  for (int c = 0; c < kStopAt; ++c) {
    for (size_t l = 0; l < bfirst.lanes(); ++l) {
      bfirst.setInput(l, "en", stim[c].en);
      bfirst.setInput(l, "a", stim[c].a);
      bfirst.setInput(l, "b", stim[c].b);
    }
    bfirst.step();
  }
  Simulation cont(g, EvaluatorKind::Levelized);
  cont.restoreSnapshot(bfirst.saveSnapshot(1));
  for (int c = kStopAt; c < kCycles; ++c) drive(cont, stim[c]);
  for (NetId n = 0; n < nl.netCount(); ++n) {
    ASSERT_EQ(cont.netValue(n), straight.netValue(n)) << nl.net(n).name;
  }
  EXPECT_EQ(laneKeys(cont.errors(), -1), laneKeys(straight.errors(), -1));
}

}  // namespace
}  // namespace zeus::test

// Odd-even transposition sorting networks (§9 invites describing the
// cited [Thompson 1981] sorting circuits in Zeus): combinational and
// systolic variants over 4-bit words.
#include <gtest/gtest.h>

#include <algorithm>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string sorterSource(const char* type, int n) {
  return std::string(corpus::kSorter) + "SIGNAL s: " + type + "(" +
         std::to_string(n) + ");\n";
}

std::vector<Logic> packWords(const std::vector<uint64_t>& words) {
  std::vector<Logic> bits;
  for (uint64_t w : words) {
    for (int k = 0; k < 4; ++k) bits.push_back(logicFromBool((w >> k) & 1));
  }
  return bits;
}

std::vector<uint64_t> unpackWords(const std::vector<Logic>& bits) {
  std::vector<uint64_t> words(bits.size() / 4, 0);
  for (size_t i = 0; i < bits.size(); ++i) {
    EXPECT_TRUE(isDefined(bits[i]));
    if (bits[i] == Logic::One) words[i / 4] |= uint64_t{1} << (i % 4);
  }
  return words;
}

class SorterWidth : public ::testing::TestWithParam<int> {};

TEST_P(SorterWidth, CombinationalSortsEverything) {
  const int n = GetParam();
  Built b = buildOk(sorterSource("sorter", n), "s");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  uint64_t rng = 0xC0FFEE;
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<uint64_t> words(n);
    for (uint64_t& w : words) {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      w = rng & 15;
    }
    sim.setInput("din", packWords(words));
    sim.step();
    std::vector<uint64_t> got = unpackWords(sim.outputBits("dout"));
    std::vector<uint64_t> expect = words;
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(got, expect) << "trial " << trial;
  }
  EXPECT_TRUE(sim.errors().empty());
}

INSTANTIATE_TEST_SUITE_P(Widths, SorterWidth, ::testing::Values(2, 4, 6, 8));

TEST(Sorter, SystolicPipelineSortsWithLatencyN) {
  const int n = 4;
  Built b = buildOk(sorterSource("systolicsorter", n), "s");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  // Stream several vectors back to back: results appear n cycles later,
  // one per cycle (throughput 1 vector/cycle).
  std::vector<std::vector<uint64_t>> inputs = {
      {7, 3, 15, 1}, {4, 4, 2, 9}, {0, 13, 6, 5}, {8, 8, 8, 8},
      {15, 14, 2, 0},
  };
  std::vector<std::vector<uint64_t>> got;
  for (size_t t = 0; t < inputs.size() + n; ++t) {
    const std::vector<uint64_t>& in =
        t < inputs.size() ? inputs[t] : inputs.back();
    sim.setInput("din", packWords(in));
    sim.step();
    if (t >= static_cast<size_t>(n)) {
      got.push_back(unpackWords(sim.outputBits("dout")));
    }
  }
  ASSERT_EQ(got.size(), inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    std::vector<uint64_t> expect = inputs[i];
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(got[i], expect) << "vector " << i;
  }
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Sorter, StableOnEqualKeysAndExtremes) {
  Built b = buildOk(sorterSource("sorter", 4), "s");
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  for (std::vector<uint64_t> words :
       {std::vector<uint64_t>{5, 5, 5, 5}, {0, 0, 15, 15},
        {15, 0, 15, 0}, {0, 1, 2, 3}, {3, 2, 1, 0}}) {
    sim.setInput("din", packWords(words));
    sim.step();
    std::vector<uint64_t> expect = words;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(unpackWords(sim.outputBits("dout")), expect);
  }
}

}  // namespace
}  // namespace zeus::test

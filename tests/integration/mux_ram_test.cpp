// E11 + §3.2: the mux4 function component and the REG-based RAM with NUM
// addressing.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

TEST(Mux4, SelectsByAddress) {
  Built b = buildOk(kMux4, "m");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle);
  Simulation sim(g);
  for (uint64_t d = 0; d < 16; ++d) {
    for (uint64_t a = 0; a < 4; ++a) {
      sim.setInputUint("d", d);
      sim.setInputUint("a", a);
      sim.setInput("g", Logic::Zero);  // not gated
      sim.step();
      // bit2 enumerates (a[1],a[2]) patterns; with LSB-first array ports
      // (index 1 = LSB) the pattern (x,y) is the value x + 2y, so the
      // selected data index is the bit-reversed address.
      uint64_t sel = ((a & 1) << 1) | ((a >> 1) & 1);
      ASSERT_EQ(sim.output("y"), logicFromBool((d >> sel) & 1))
          << "d=" << d << " a=" << a;
    }
  }
  // Gate forces 0.
  sim.setInputUint("d", 15);
  sim.setInputUint("a", 2);
  sim.setInput("g", Logic::One);
  sim.step();
  EXPECT_EQ(sim.output("y"), Logic::Zero);
  EXPECT_TRUE(sim.errors().empty());
}

TEST(Ram, WritesAndReadsBack) {
  Built b = buildOk(kRam, "mem");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  ASSERT_FALSE(g.hasCycle) << b.comp->diagnosticsText();
  Simulation sim(g);
  // Write distinct patterns to all 16 words.
  for (uint64_t a = 0; a < 16; ++a) {
    sim.setInputUint("addr", a);
    sim.setInputUint("din", (a * 17 + 3) & 0xFF);
    sim.setInput("write", Logic::One);
    sim.step();
  }
  // Read them back.
  sim.setInput("write", Logic::Zero);
  for (uint64_t a = 0; a < 16; ++a) {
    sim.setInputUint("addr", a);
    sim.step();
    ASSERT_EQ(sim.outputUint("dout").value_or(~0ull), (a * 17 + 3) & 0xFF)
        << "addr=" << a;
  }
  EXPECT_TRUE(sim.errors().empty()) << sim.errors()[0].message;
}

TEST(Ram, ReadDuringWriteSeesOldValue) {
  // §5.1: in the same clock cycle the in port is assigned and the stored
  // value (from the last cycle) is read at out.
  Built b = buildOk(kRam, "mem");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("addr", 5);
  sim.setInputUint("din", 0xAB);
  sim.setInput("write", Logic::One);
  sim.step();
  // Second write to the same address: during this cycle dout shows 0xAB.
  sim.setInputUint("din", 0xCD);
  sim.evaluateOnly();
  EXPECT_EQ(sim.outputUint("dout").value_or(~0ull), 0xABu);
  sim.step();
  sim.setInput("write", Logic::Zero);
  sim.step();
  EXPECT_EQ(sim.outputUint("dout").value_or(~0ull), 0xCDu);
}

TEST(Ram, UnwrittenWordsReadUndef) {
  Built b = buildOk(kRam, "mem");
  ASSERT_NE(b.design, nullptr);
  SimGraph g = buildSimGraph(*b.design, b.comp->diags());
  Simulation sim(g);
  sim.setInputUint("addr", 9);
  sim.setInput("write", Logic::Zero);
  sim.setInputUint("din", 0);
  sim.step();
  EXPECT_EQ(sim.outputUint("dout"), std::nullopt);
  for (Logic v : sim.outputBits("dout")) EXPECT_EQ(v, Logic::Undef);
}

}  // namespace
}  // namespace zeus::test

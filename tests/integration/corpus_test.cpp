// Corpus-wide smoke: every built-in program compiles, elaborates, builds
// an acyclic semantics graph, simulates a few cycles under both
// evaluators, and solves its layout.
#include <gtest/gtest.h>

#include "src/corpus/corpus.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string instantiated(const corpus::CorpusEntry& e, std::string* top) {
  return corpusSource(e, top);  // shared with the transform tests
}

class CorpusSmoke : public ::testing::TestWithParam<corpus::CorpusEntry> {};

TEST_P(CorpusSmoke, BuildsSimulatesAndLaysOut) {
  const corpus::CorpusEntry& e = GetParam();
  std::string top;
  std::string source = instantiated(e, &top);

  auto comp = Compilation::fromSource(std::string(e.name) + ".zeus", source);
  ASSERT_TRUE(comp->ok()) << comp->diagnosticsText();
  auto design = comp->elaborate(top);
  ASSERT_NE(design, nullptr) << comp->diagnosticsText();
  EXPECT_GT(design->netlist.nodeCount(), 0u);

  SimGraph graph = buildSimGraph(*design, comp->diags());
  ASSERT_FALSE(graph.hasCycle) << comp->diagnosticsText();

  for (EvaluatorKind kind : {EvaluatorKind::Firing, EvaluatorKind::Naive}) {
    Simulation sim(graph, kind);
    // Zero every pure input, pulse reset, run a few cycles.
    for (const Port& p : design->ports) {
      if (p.mode == ast::ParamMode::In) {
        sim.setInput(p.name,
                     std::vector<Logic>(p.nets.size(), Logic::Zero));
      }
    }
    sim.setRset(true);
    sim.step(2);
    sim.setRset(false);
    sim.step(6);
    EXPECT_EQ(sim.cycle(), 8u);
  }

  LayoutResult layout = solveLayout(*design, comp->diags());
  EXPECT_GE(layout.bounds.w, 1);
  EXPECT_GE(layout.bounds.h, 1);
  std::string overlap;
  EXPECT_FALSE(layout.hasOverlaps(&overlap)) << e.name << ": " << overlap;
}

TEST_P(CorpusSmoke, EvaluatorsAgreeBitForBit) {
  const corpus::CorpusEntry& e = GetParam();
  std::string top;
  std::string source = instantiated(e, &top);
  auto comp = Compilation::fromSource(std::string(e.name) + ".zeus", source);
  ASSERT_TRUE(comp->ok());
  auto design = comp->elaborate(top);
  ASSERT_NE(design, nullptr);
  SimGraph graph = buildSimGraph(*design, comp->diags());
  ASSERT_FALSE(graph.hasCycle);

  Simulation fire(graph, EvaluatorKind::Firing);
  Simulation naive(graph, EvaluatorKind::Naive);
  uint64_t rng = 0x5EED;
  for (int cyc = 0; cyc < 6; ++cyc) {
    for (const Port& p : design->ports) {
      if (p.mode != ast::ParamMode::In) continue;
      std::vector<Logic> bits(p.nets.size());
      for (Logic& bit : bits) {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        bit = logicFromBool(rng & 1);
      }
      fire.setInput(p.name, bits);
      naive.setInput(p.name, bits);
    }
    fire.step();
    naive.step();
    for (NetId n = 0; n < design->netlist.netCount(); n += 3) {
      ASSERT_EQ(fire.netValue(n), naive.netValue(n))
          << e.name << " net " << design->netlist.net(n).name << " cycle "
          << cyc;
    }
  }
}

std::string nameOf(const ::testing::TestParamInfo<corpus::CorpusEntry>& i) {
  std::string n = i.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(All, CorpusSmoke,
                         ::testing::ValuesIn(corpus::all()), nameOf);

}  // namespace
}  // namespace zeus::test

// Systolic stack and dictionary machine (paper abstract / §9 citations).
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

std::string stackSource(int n) {
  return std::string(corpus::kSystolicStack) +
         "SIGNAL st: systolicstack(" + std::to_string(n) + ");\n";
}

class StackDriver {
 public:
  explicit StackDriver(int n)
      : built_(buildOk(stackSource(n), "st")),
        graph_(buildSimGraph(*built_.design, built_.comp->diags())),
        sim_(graph_) {
    sim_.setInput("push", Logic::Zero);
    sim_.setInput("pop", Logic::Zero);
    sim_.setInputUint("din", 0);
    sim_.setRset(true);
    sim_.step();
    sim_.setRset(false);
  }

  void push(uint64_t v) {
    sim_.setInputUint("din", v);
    sim_.setInput("push", Logic::One);
    sim_.setInput("pop", Logic::Zero);
    sim_.step();
    sim_.setInput("push", Logic::Zero);
  }

  /// Pops and returns the popped value: during the pop cycle the `top`
  /// port shows the pre-pop top of stack.
  std::optional<uint64_t> pop() {
    sim_.setInput("pop", Logic::One);
    sim_.setInput("push", Logic::Zero);
    sim_.step();
    sim_.setInput("pop", Logic::Zero);
    return top();
  }

  std::optional<uint64_t> top() {
    if (sim_.output("valid") != Logic::One) return std::nullopt;
    return sim_.outputUint("top");
  }

  Simulation& sim() { return sim_; }

 private:
  Built built_;
  SimGraph graph_;
  Simulation sim_;
};

TEST(SystolicStack, PushPopLifo) {
  StackDriver st(8);
  EXPECT_EQ(st.top(), std::nullopt);  // empty after reset
  st.push(3);
  st.sim().step();  // settle outputs
  EXPECT_EQ(st.top(), 3u);
  st.push(7);
  st.push(12);
  st.sim().step();
  EXPECT_EQ(st.top(), 12u);
  EXPECT_EQ(st.pop(), 12u);
  st.sim().step();
  EXPECT_EQ(st.pop(), 7u);
  st.sim().step();
  EXPECT_EQ(st.pop(), 3u);
  st.sim().step();
  EXPECT_EQ(st.top(), std::nullopt);
  EXPECT_TRUE(st.sim().errors().empty());
}

TEST(SystolicStack, InterleavedOperations) {
  StackDriver st(8);
  st.push(1);
  st.push(2);
  EXPECT_EQ(st.pop(), 2u);
  st.push(5);
  st.sim().step();
  EXPECT_EQ(st.top(), 5u);
  EXPECT_EQ(st.pop(), 5u);
  st.sim().step();
  EXPECT_EQ(st.pop(), 1u);
}

TEST(SystolicStack, OverflowFlag) {
  StackDriver st(4);
  for (uint64_t v = 1; v <= 4; ++v) st.push(v);
  // The 4-cell array is full; the next push raises overflow during the
  // cycle it happens.
  st.sim().setInputUint("din", 9);
  st.sim().setInput("push", Logic::One);
  st.sim().evaluateOnly();
  EXPECT_EQ(st.sim().output("overflow"), Logic::One);
}

TEST(SystolicStack, DepthSweepElaborates) {
  for (int n : {4, 16, 64}) {
    Built b = buildOk(stackSource(n), "st");
    ASSERT_NE(b.design, nullptr) << "n=" << n;
    SimGraph g = buildSimGraph(*b.design, b.comp->diags());
    EXPECT_EQ(g.regNodes.size(), static_cast<size_t>(n) * 5);
    LayoutResult lr = solveLayout(*b.design, b.comp->diags());
    EXPECT_EQ(lr.bounds.w, n);
  }
}

std::string dictSource(int n) {
  return std::string(corpus::kDictionary) + "SIGNAL dict: dicttree(" +
         std::to_string(n) + ");\n";
}

class DictDriver {
 public:
  explicit DictDriver(int n)
      : built_(buildOk(dictSource(n), "dict")),
        graph_(buildSimGraph(*built_.design, built_.comp->diags())),
        sim_(graph_) {
    sim_.setInput("ins", Logic::Zero);
    sim_.setInput("query", Logic::Zero);
    sim_.setInputUint("k", 0);
    sim_.setRset(true);
    sim_.step();
    sim_.setRset(false);
  }

  void insert(uint64_t key) {
    sim_.setInputUint("k", key);
    sim_.setInput("ins", Logic::One);
    sim_.setInput("query", Logic::Zero);
    sim_.step();
    sim_.setInput("ins", Logic::Zero);
  }

  bool member(uint64_t key) {
    sim_.setInputUint("k", key);
    sim_.setInput("query", Logic::One);
    sim_.setInput("ins", Logic::Zero);
    sim_.step();
    sim_.setInput("query", Logic::Zero);
    return sim_.output("found") == Logic::One;
  }

  Simulation& sim() { return sim_; }

 private:
  Built built_;
  SimGraph graph_;
  Simulation sim_;
};

TEST(Dictionary, InsertAndMember) {
  DictDriver d(8);
  EXPECT_FALSE(d.member(5));
  d.insert(5);
  EXPECT_TRUE(d.member(5));
  EXPECT_FALSE(d.member(6));
  d.insert(6);
  d.insert(12);
  EXPECT_TRUE(d.member(5));
  EXPECT_TRUE(d.member(6));
  EXPECT_TRUE(d.member(12));
  EXPECT_FALSE(d.member(0));
  EXPECT_TRUE(d.sim().errors().empty());
}

TEST(Dictionary, FillsTreeCapacity) {
  // A tree with 7 nodes (n=4: root + 2 + 4... dicttree(4) = 1 + 2*dicttree(2)
  // = 1 + 2*(1 + 2*dicttree(1)) = 7 nodes).
  DictDriver d(4);
  for (uint64_t k = 1; k <= 7; ++k) d.insert(k);
  d.sim().step();
  for (uint64_t k = 1; k <= 7; ++k) {
    EXPECT_TRUE(d.member(k)) << "key " << k;
  }
  EXPECT_EQ(d.sim().output("full"), Logic::One);
}

TEST(Dictionary, LayoutIsATree) {
  Built b = buildOk(dictSource(8), "dict");
  LayoutResult lr = solveLayout(*b.design, b.comp->diags());
  // 4 levels: root row + 3 subtree rows.
  EXPECT_EQ(lr.bounds.h, 4);
  EXPECT_EQ(lr.leafCount(), 15u);  // 2^4 - 1 nodes
}

}  // namespace
}  // namespace zeus::test

// The AM2901 bit-slice ALU (paper abstract: "the language has been tested
// on ... AM2901").  Exercises the full datapath: two-port register file
// with NUM addressing, the Zeus-source ripple ALU with flags, source and
// destination decoding with shift paths.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

// Instruction field encodings (LSB-first bit vectors).
enum Src { AQ = 0, AB = 1, ZQ = 2, ZB = 3, ZA = 4, DA = 5, DQ = 6, DZ = 7 };
enum Fn { ADD = 0, SUBR = 1, SUBS = 2, OR_ = 3, AND_ = 4, NOTRS = 5,
          EXOR = 6, EXNOR = 7 };
enum Dst { QREG = 0, NOP = 1, RAMA = 2, RAMF = 3, RAMQD = 4, RAMD = 5,
           RAMQU = 6, RAMU = 7 };

class Am2901Driver {
 public:
  Am2901Driver()
      : built_(buildOk(corpus::kAm2901, "alu")),
        graph_(buildSimGraph(*built_.design, built_.comp->diags())),
        sim_(graph_) {
    sim_.setInput("cin", Logic::Zero);
    for (const char* p : {"ram0in", "ram3in", "q0in", "q3in"}) {
      sim_.setInput(p, Logic::Zero);
    }
    sim_.setInputUint("d", 0);
    sim_.setInputUint("aaddr", 0);
    sim_.setInputUint("baddr", 0);
  }

  void instr(Src s, Fn f, Dst dst, uint64_t a, uint64_t b, uint64_t d,
             int cin = 0) {
    sim_.setInputUint("i",
                      static_cast<uint64_t>(s) |
                          (static_cast<uint64_t>(f) << 3) |
                          (static_cast<uint64_t>(dst) << 6));
    sim_.setInputUint("aaddr", a);
    sim_.setInputUint("baddr", b);
    sim_.setInputUint("d", d);
    sim_.setInput("cin", logicFromBool(cin));
    sim_.step();
  }

  uint64_t y() { return sim_.outputUint("y").value_or(999); }
  Logic cout() { return sim_.output("cout"); }
  Logic f3() { return sim_.output("f3"); }
  Logic fzero() { return sim_.output("fzero"); }
  Simulation& sim() { return sim_; }

  /// Loads a constant into register r via D + ADD with zero.
  void loadReg(uint64_t r, uint64_t value) {
    instr(DZ, ADD, RAMF, 0, r, value);
  }

 private:
  Built built_;
  SimGraph graph_;
  Simulation sim_;
};

TEST(Am2901, LoadAndReadRegisters) {
  Am2901Driver alu;
  alu.loadReg(3, 9);
  alu.loadReg(7, 5);
  // Y = A data (RAMA writes F to B but outputs A): read reg 3 via A port.
  alu.instr(AB, ADD, RAMA, 3, 3, 0);
  EXPECT_EQ(alu.y(), 9u);
  EXPECT_TRUE(alu.sim().errors().empty());
}

TEST(Am2901, AddWithCarry) {
  Am2901Driver alu;
  alu.loadReg(1, 9);
  alu.loadReg(2, 5);
  // F = A + B: src AB reads R=A(reg1), S=B(reg2).
  alu.instr(AB, ADD, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 14u);
  EXPECT_EQ(alu.cout(), Logic::Zero);
  // 9 + 9 = 18 : carry out, y = 2.
  alu.instr(AB, ADD, NOP, 1, 1, 0);
  EXPECT_EQ(alu.y(), 2u);
  EXPECT_EQ(alu.cout(), Logic::One);
  // Carry-in adds one.
  alu.instr(AB, ADD, NOP, 1, 2, 0, 1);
  EXPECT_EQ(alu.y(), 15u);
}

TEST(Am2901, Subtract) {
  Am2901Driver alu;
  alu.loadReg(1, 9);
  alu.loadReg(2, 5);
  // SUBR: S - R = B - A (R=A=9, S=B=5): 5-9 = -4 = 12 mod 16, borrow.
  alu.instr(AB, SUBR, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 12u);
  EXPECT_EQ(alu.cout(), Logic::Zero);  // borrow
  // SUBS: R - S = 9-5 = 4, no borrow.
  alu.instr(AB, SUBS, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 4u);
  EXPECT_EQ(alu.cout(), Logic::One);
}

TEST(Am2901, LogicOps) {
  Am2901Driver alu;
  alu.loadReg(1, 0b1100);
  alu.loadReg(2, 0b1010);
  alu.instr(AB, OR_, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 0b1110u);
  alu.instr(AB, AND_, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 0b1000u);
  alu.instr(AB, EXOR, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 0b0110u);
  alu.instr(AB, EXNOR, NOP, 1, 2, 0);
  EXPECT_EQ(alu.y(), 0b1001u);
  alu.instr(AB, NOTRS, NOP, 1, 2, 0);  // ~R AND S
  EXPECT_EQ(alu.y(), 0b0010u);
}

TEST(Am2901, Flags) {
  Am2901Driver alu;
  alu.loadReg(1, 8);
  alu.instr(AB, ADD, NOP, 1, 1, 0);  // 8+8 = 16 -> F=0, carry, not F3
  EXPECT_EQ(alu.fzero(), Logic::One);
  EXPECT_EQ(alu.cout(), Logic::One);
  EXPECT_EQ(alu.f3(), Logic::Zero);
  alu.loadReg(2, 12);
  alu.instr(AB, ADD, NOP, 2, 2, 0);  // 12+12 = 24 -> F=8, F3 set
  EXPECT_EQ(alu.f3(), Logic::One);
  EXPECT_EQ(alu.fzero(), Logic::Zero);
}

TEST(Am2901, QRegisterAndShifts) {
  Am2901Driver alu;
  // Load Q with 6 via D.
  alu.instr(DZ, ADD, QREG, 0, 0, 6);
  // Read Q: src ZQ gives R=0, S=Q.
  alu.instr(ZQ, ADD, NOP, 0, 0, 0);
  EXPECT_EQ(alu.y(), 6u);
  // RAMQU: write 2F into B and 2Q into Q. F = Q = 6 -> reg5 = 12, Q = 12.
  alu.instr(ZQ, ADD, RAMQU, 0, 5, 0);
  alu.instr(ZQ, ADD, NOP, 0, 0, 0);
  EXPECT_EQ(alu.y(), 12u);
  alu.instr(AB, ADD, NOP, 5, 5, 0);  // hmm reads reg5 as both: 12+12=24%16=8
  EXPECT_EQ(alu.y(), 8u);
  // RAMQD: F/2 into B, Q/2 into Q. F = Q = 12 -> reg4 = 6, Q = 6.
  alu.instr(ZQ, ADD, RAMQD, 0, 4, 0);
  alu.instr(ZQ, ADD, NOP, 0, 0, 0);
  EXPECT_EQ(alu.y(), 6u);
}

TEST(Am2901, SixteenBitCounterProgram) {
  // A small "program": accumulate 1+2+...+10 in register 0.
  Am2901Driver alu;
  alu.loadReg(0, 0);
  uint64_t expect = 0;
  for (uint64_t k = 1; k <= 10; ++k) {
    // F = D + A(reg0), write back to reg 0.
    alu.instr(DA, ADD, RAMF, 0, 0, k);
    expect = (expect + k) & 0xF;
  }
  alu.instr(AB, ADD, RAMA, 0, 0, 0);  // Y = A
  EXPECT_EQ(alu.y(), expect);
  EXPECT_TRUE(alu.sim().errors().empty());
}

}  // namespace
}  // namespace zeus::test

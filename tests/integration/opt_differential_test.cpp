// Differential oracle for the optimization pipeline: for every corpus
// program (and a RANDOM + REG + contention design), an optimized (-O1)
// build must be bit-identical to the unoptimized (-O0) build on every
// surviving net, every cycle, under all three scalar evaluators and the
// 64-lane batch engine — including SimError multisets and RANDOM streams.
//
// NetIds are stable across elaborations of the same source, so the two
// designs are compared net by net; classes the optimizer dropped
// (SimGraph::kNoDense in the optimized graph) are unobservable by
// construction and excluded from the sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

using ErrorKey = std::tuple<uint64_t, std::string>;

std::vector<ErrorKey> errorKeys(const std::vector<SimError>& errs,
                                int32_t lane) {
  std::vector<ErrorKey> keys;
  for (const SimError& e : errs) {
    if (lane >= 0 && e.lane != lane) continue;
    keys.emplace_back(e.cycle, e.netName);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

/// An unoptimized and an optimized build of the same source, with the
/// optimized graph's surviving-net set as the comparison domain.
struct OptPair {
  Built plain;
  Built opt;
  SimGraph plainGraph;
  SimGraph optGraph;

  explicit OptPair(const std::string& src, const std::string& top)
      : plain(buildOk(src, top)), opt(buildOk(src, top)) {
    plainGraph = buildSimGraph(*plain.design, plain.comp->diags());
    EXPECT_FALSE(plainGraph.hasCycle);
    OptReport rep = opt.comp->optimize(*opt.design);
    EXPECT_TRUE(rep.ran);
    EXPECT_TRUE(rep.verified) << rep.verifyError;
    optGraph = buildSimGraph(*opt.design, opt.comp->diags());
    EXPECT_FALSE(optGraph.hasCycle);
    EXPECT_EQ(plain.design->netlist.netCount(),
              opt.design->netlist.netCount());
  }

  /// Every net that still has a dense slot at -O1 must read identically.
  template <typename ReadPlain, typename ReadOpt>
  void checkNets(ReadPlain readPlain, ReadOpt readOpt,
                 const std::string& context) {
    const Netlist& nl = plain.design->netlist;
    for (NetId n = 0; n < nl.netCount(); ++n) {
      if (optGraph.dense(n) == SimGraph::kNoDense) continue;
      ASSERT_EQ(readPlain(n), readOpt(n))
          << context << ": net '" << nl.net(n).name << "'";
    }
  }
};

/// Drives both builds of `src` with identical pseudo-random stimulus for
/// `cycles` cycles through all three scalar evaluators and a 64-lane
/// batch run, asserting net-for-net and error-for-error equality.
void checkOptEquivalence(const std::string& src, const std::string& top,
                         const std::string& label, int cycles,
                         bool pulseRset) {
  OptPair pair(src, top);
  const std::vector<Port>& ports = pair.plain.design->ports;

  for (EvaluatorKind kind :
       {EvaluatorKind::Firing, EvaluatorKind::Naive,
        EvaluatorKind::Levelized}) {
    Simulation s0(pair.plainGraph, kind);
    Simulation s1(pair.optGraph, kind);
    s0.setRandomSeed(0xD1FFull);
    s1.setRandomSeed(0xD1FFull);
    std::mt19937_64 rng(41);
    auto drive = [&]() {
      for (const Port& p : ports) {
        if (p.mode != ast::ParamMode::In) continue;
        uint64_t v = rng();
        s0.setInputUint(p.name, v);
        s1.setInputUint(p.name, v);
      }
    };
    if (pulseRset) {
      drive();
      s0.setRset(true);
      s1.setRset(true);
      s0.step();
      s1.step();
      s0.setRset(false);
      s1.setRset(false);
    }
    for (int cyc = 0; cyc < cycles; ++cyc) {
      drive();
      s0.step();
      s1.step();
      pair.checkNets([&](NetId n) { return s0.netValue(n); },
                     [&](NetId n) { return s1.netValue(n); },
                     label + " evaluator " +
                         std::to_string(static_cast<int>(kind)) +
                         " cycle " + std::to_string(cyc));
    }
    EXPECT_EQ(errorKeys(s0.errors(), -1), errorKeys(s1.errors(), -1))
        << label << " evaluator " << static_cast<int>(kind);
  }

  // 64 batch lanes with per-lane stimulus.
  constexpr size_t kLanes = 64;
  BatchSimulation b0(pair.plainGraph, kLanes);
  BatchSimulation b1(pair.optGraph, kLanes);
  std::mt19937_64 rng(43);
  auto driveBatch = [&]() {
    for (const Port& p : ports) {
      if (p.mode != ast::ParamMode::In) continue;
      for (size_t l = 0; l < kLanes; ++l) {
        uint64_t v = rng();
        b0.setInputUint(l, p.name, v);
        b1.setInputUint(l, p.name, v);
      }
    }
  };
  if (pulseRset) {
    driveBatch();
    b0.setRset(true);
    b1.setRset(true);
    b0.step();
    b1.step();
    b0.setRset(false);
    b1.setRset(false);
  }
  for (int cyc = 0; cyc < cycles; ++cyc) {
    driveBatch();
    b0.step();
    b1.step();
    for (size_t l = 0; l < kLanes; l += 7) {  // spot-check lanes per cycle
      pair.checkNets(
          [&](NetId n) { return b0.netValue(l, n); },
          [&](NetId n) { return b1.netValue(l, n); },
          label + " batch lane " + std::to_string(l) + " cycle " +
              std::to_string(cyc));
    }
  }
  for (size_t l = 0; l < kLanes; ++l) {  // every lane at the final cycle
    pair.checkNets([&](NetId n) { return b0.netValue(l, n); },
                   [&](NetId n) { return b1.netValue(l, n); },
                   label + " batch lane " + std::to_string(l) + " final");
    EXPECT_EQ(errorKeys(b0.errors(), static_cast<int32_t>(l)),
              errorKeys(b1.errors(), static_cast<int32_t>(l)))
        << label << " batch lane " << l;
  }
  EXPECT_EQ(b0.errors().size(), b1.errors().size()) << label;
}

class OptDifferentialCorpus
    : public ::testing::TestWithParam<corpus::CorpusEntry> {};

TEST_P(OptDifferentialCorpus, OptimizedMatchesUnoptimizedEverywhere) {
  std::string top;
  std::string src = corpusSource(GetParam(), &top);
  checkOptEquivalence(src, top, GetParam().name, /*cycles=*/6,
                      /*pulseRset=*/true);
}

std::string entryName(
    const ::testing::TestParamInfo<corpus::CorpusEntry>& i) {
  std::string n = i.param.name;
  for (char& c : n) {
    if (c == '-') c = '_';
  }
  return n;
}

INSTANTIATE_TEST_SUITE_P(All, OptDifferentialCorpus,
                         ::testing::ValuesIn(corpus::all()), entryName);

// RANDOM draws, a REG trajectory and input-dependent contention: the
// cases the corpus alone does not cover.  DCE must not remove or reorder
// RANDOM nodes (the shared RNG stream is drawn in sourceNodes order), REG
// latching must see identical inputs, and the (cycle, net) SimError
// multisets must match exactly.
const char* kRandomized = R"(
TYPE t = COMPONENT (IN en, a, b: boolean; OUT o, q: boolean) IS
  SIGNAL r: REG;
  SIGNAL m: multiplex;
  SIGNAL unused: boolean;
BEGIN
  IF en THEN r.in := RANDOM() END;
  IF a THEN m := 1 END;
  IF b THEN m := 0 END;
  unused := AND(RANDOM(), 0);
  o := r.out;
  q := m
END;
SIGNAL top: t;
)";

TEST(OptDifferential, RandomStreamsRegistersAndErrorsSurviveO1) {
  // 'unused' is a constant-0 AND fed by a RANDOM: the gate folds and the
  // net drops, but the RANDOM node must stay so the draw for r.in keeps
  // its stream position.
  checkOptEquivalence(kRandomized, "top", "randomized", /*cycles=*/32,
                      /*pulseRset=*/false);

  OptPair pair(kRandomized, "top");
  uint64_t randoms = 0;
  for (const Node& n : pair.opt.design->netlist.nodes()) {
    if (n.op == NodeOp::Random) ++randoms;
  }
  EXPECT_EQ(randoms, 2u) << "DCE removed a RANDOM node";
}

}  // namespace
}  // namespace zeus::test

// E6: the systolic pattern matcher (paper §10 "Pattern Matching") and its
// "possible computation sequence" figure.
//
// Input protocol (from the paper): pattern and string bits enter bitwise
// every second clock cycle; 0s enter during the idle phase.  Pattern flows
// left-to-right through the comparators, the string right-to-left, so each
// pattern bit meets each string bit exactly once.
#include <gtest/gtest.h>

#include "tests/support/paper_examples.h"
#include "tests/support/test_util.h"

namespace zeus::test {
namespace {

/// Asserts the steady-state shape of the paper's computation-sequence
/// figure: in the second half of the samples, result bits of value 1
/// appear on every second cycle (one fixed parity) and the interleaved
/// cycles carry 0.
void expectSteadyAlternatingOnes(const std::vector<Logic>& results) {
  size_t start = results.size() / 2;
  size_t firstOne = results.size();
  for (size_t i = start; i < results.size(); ++i) {
    if (results[i] == Logic::One) {
      firstOne = i;
      break;
    }
  }
  ASSERT_LT(firstOne, results.size()) << "no 1 result in steady state";
  for (size_t i = firstOne; i < results.size(); ++i) {
    if ((i - firstOne) % 2 == 0) {
      EXPECT_EQ(results[i], Logic::One) << "cycle sample " << i;
    } else {
      EXPECT_EQ(results[i], Logic::Zero) << "cycle sample " << i;
    }
  }
}

std::string matchSource(int length) {
  return std::string(kPatternMatch) + "SIGNAL m: patternmatch(" +
         std::to_string(length) + ");\n";
}

TEST(PatternMatch, ElaboratesWithLayout) {
  Built b = buildOk(matchSource(3), "m");
  ASSERT_NE(b.design, nullptr) << b.comp->diagnosticsText();
  LayoutResult layout = solveLayout(*b.design, b.comp->diags());
  // length columns of (comparator over accumulator).
  EXPECT_EQ(layout.bounds.w, 3);
  EXPECT_EQ(layout.bounds.h, 2);
  EXPECT_EQ(layout.leafCount(), 6u);
}

/// Drives the matcher: pattern/string bits enter every second cycle.
struct MatchDriver {
  explicit MatchDriver(int length, EvaluatorKind kind = EvaluatorKind::Firing)
      : built(buildOk(matchSource(length), "m")),
        graph(buildSimGraph(*built.design, built.comp->diags())),
        sim(graph, kind) {
    sim.setInput("pattern", Logic::Zero);
    sim.setInput("string", Logic::Zero);
    sim.setInput("endofpattern", Logic::Zero);
    sim.setInput("wild", Logic::Zero);
    sim.setInput("resultin", Logic::Zero);
    // Hold reset while zeroes flush through the shift registers, so every
    // control signal is defined before data flows ("during an idle input
    // phase we assume that 0's go into the circuit").
    sim.setRset(true);
    sim.step(static_cast<uint64_t>(length) + 2);
    sim.setRset(false);
  }

  /// One input beat: applies the bits for one active cycle and one idle
  /// cycle; records the result bit of each cycle.
  void beat(int p, int s, int eop, int w, std::vector<Logic>& results) {
    sim.setInput("pattern", logicFromBool(p));
    sim.setInput("string", logicFromBool(s));
    sim.setInput("endofpattern", logicFromBool(eop));
    sim.setInput("wild", logicFromBool(w));
    sim.step();
    results.push_back(sim.output("result"));
    sim.setInput("pattern", Logic::Zero);
    sim.setInput("string", Logic::Zero);
    sim.setInput("endofpattern", Logic::Zero);
    sim.setInput("wild", Logic::Zero);
    sim.step();
    results.push_back(sim.output("result"));
  }

  Built built;
  SimGraph graph;
  Simulation sim;
};

TEST(PatternMatch, StreamsWithoutRuntimeErrors) {
  MatchDriver d(3);
  std::vector<Logic> results;
  for (int i = 0; i < 12; ++i) {
    d.beat(i & 1, (i >> 1) & 1, (i % 3) == 2, 0, results);
  }
  EXPECT_TRUE(d.sim.errors().empty());
  EXPECT_EQ(results.size(), 24u);
}

TEST(PatternMatch, ResultBitsEverySecondCycle) {
  // The computation-sequence figure: after the pipeline fills, a result
  // bit appears at the left end on every second cycle (defined 0/1, not
  // UNDEF).
  MatchDriver d(3);
  std::vector<Logic> results;
  for (int i = 0; i < 16; ++i) {
    d.beat(1, 1, (i % 3) == 2, 0, results);
  }
  // Find the first defined result, then check the 2-cycle cadence: at
  // least one defined result in every consecutive window of two samples
  // from there on (samples are taken every cycle, two per beat).
  size_t first = results.size();
  for (size_t i = 0; i < results.size(); ++i) {
    if (isDefined(results[i])) {
      first = i;
      break;
    }
  }
  ASSERT_LT(first, results.size()) << "pipeline never produced a result";
  int definedCount = 0;
  for (size_t i = first; i < results.size(); ++i) {
    if (isDefined(results[i])) ++definedCount;
  }
  EXPECT_GE(definedCount, static_cast<int>((results.size() - first) / 2 - 2));
}

TEST(PatternMatch, AllOnesPatternMatchesAllOnesString) {
  MatchDriver d(3);
  std::vector<Logic> results;
  // Pattern = 111 with the end marker on every third bit; string = all 1s.
  for (int i = 0; i < 20; ++i) {
    d.beat(1, 1, (i % 3) == 2, 0, results);
  }
  // Once the pipeline is full, a 1 result is emitted on every second
  // cycle and the interleaved cycles carry 0 — exactly the alternating
  // "0" entries in the paper's computation-sequence figure.
  expectSteadyAlternatingOnes(results);
  EXPECT_TRUE(d.sim.errors().empty());
}

TEST(PatternMatch, MismatchProducesZeroResults) {
  MatchDriver d(3);
  std::vector<Logic> results;
  // Pattern = 111, string = all 0s: accumulated comparisons fail.
  for (int i = 0; i < 20; ++i) {
    d.beat(1, 0, (i % 3) == 2, 0, results);
  }
  int ones = 0, zeros = 0;
  for (size_t i = results.size() / 2; i < results.size(); ++i) {
    if (results[i] == Logic::One) ++ones;
    if (results[i] == Logic::Zero) ++zeros;
  }
  EXPECT_GT(zeros, 0);
  EXPECT_EQ(ones, 0);
}

TEST(PatternMatch, WildcardForcesMatch) {
  MatchDriver d(3);
  std::vector<Logic> results;
  // Mismatching bits but wild = 1 everywhere: every comparison passes.
  for (int i = 0; i < 20; ++i) {
    d.beat(1, 0, (i % 3) == 2, 1, results);
  }
  expectSteadyAlternatingOnes(results);
}

TEST(PatternMatch, LongerArraysElaborate) {
  for (int len : {5, 9, 17}) {
    Built b = buildOk(matchSource(len), "m");
    ASSERT_NE(b.design, nullptr) << "length " << len;
    SimGraph g = buildSimGraph(*b.design, b.comp->diags());
    EXPECT_FALSE(g.hasCycle);
    EXPECT_EQ(g.regNodes.size(), static_cast<size_t>(len) * 6);
  }
}

}  // namespace
}  // namespace zeus::test

# Empty compiler generated dependencies file for zeus_tests.
# This may be replaced when dependencies are built.

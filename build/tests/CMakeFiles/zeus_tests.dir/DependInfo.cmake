
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/adder_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/adder_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/adder_test.cpp.o.d"
  "/root/repo/tests/integration/am2901_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/am2901_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/am2901_test.cpp.o.d"
  "/root/repo/tests/integration/blackjack_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/blackjack_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/blackjack_test.cpp.o.d"
  "/root/repo/tests/integration/chessboard_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/chessboard_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/chessboard_test.cpp.o.d"
  "/root/repo/tests/integration/corpus_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/corpus_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/corpus_test.cpp.o.d"
  "/root/repo/tests/integration/matvec_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/matvec_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/matvec_test.cpp.o.d"
  "/root/repo/tests/integration/mux_ram_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/mux_ram_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/mux_ram_test.cpp.o.d"
  "/root/repo/tests/integration/patternmatch_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/patternmatch_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/patternmatch_test.cpp.o.d"
  "/root/repo/tests/integration/routing_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/routing_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/routing_test.cpp.o.d"
  "/root/repo/tests/integration/smoke_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/smoke_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/smoke_test.cpp.o.d"
  "/root/repo/tests/integration/snake_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/snake_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/snake_test.cpp.o.d"
  "/root/repo/tests/integration/sorter_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/sorter_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/sorter_test.cpp.o.d"
  "/root/repo/tests/integration/stack_dict_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/stack_dict_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/stack_dict_test.cpp.o.d"
  "/root/repo/tests/integration/tree_test.cpp" "tests/CMakeFiles/zeus_tests.dir/integration/tree_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/integration/tree_test.cpp.o.d"
  "/root/repo/tests/unit/alias_semantics_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/alias_semantics_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/alias_semantics_test.cpp.o.d"
  "/root/repo/tests/unit/checker_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/checker_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/checker_test.cpp.o.d"
  "/root/repo/tests/unit/const_eval_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/const_eval_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/const_eval_test.cpp.o.d"
  "/root/repo/tests/unit/diagnostics_sweep_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/diagnostics_sweep_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/diagnostics_sweep_test.cpp.o.d"
  "/root/repo/tests/unit/evaluator_property_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/evaluator_property_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/evaluator_property_test.cpp.o.d"
  "/root/repo/tests/unit/feature_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/feature_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/feature_test.cpp.o.d"
  "/root/repo/tests/unit/graph_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/graph_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/graph_test.cpp.o.d"
  "/root/repo/tests/unit/layout_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/layout_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/layout_test.cpp.o.d"
  "/root/repo/tests/unit/lexer_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/lexer_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/lexer_test.cpp.o.d"
  "/root/repo/tests/unit/netlist_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/netlist_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/netlist_test.cpp.o.d"
  "/root/repo/tests/unit/orientation_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/orientation_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/orientation_test.cpp.o.d"
  "/root/repo/tests/unit/parser_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/parser_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/parser_test.cpp.o.d"
  "/root/repo/tests/unit/report_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/report_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/report_test.cpp.o.d"
  "/root/repo/tests/unit/robustness_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/robustness_test.cpp.o.d"
  "/root/repo/tests/unit/roundtrip_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/roundtrip_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/roundtrip_test.cpp.o.d"
  "/root/repo/tests/unit/script_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/script_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/script_test.cpp.o.d"
  "/root/repo/tests/unit/section47_examples_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/section47_examples_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/section47_examples_test.cpp.o.d"
  "/root/repo/tests/unit/sim_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/sim_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/sim_test.cpp.o.d"
  "/root/repo/tests/unit/structural_property_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/structural_property_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/structural_property_test.cpp.o.d"
  "/root/repo/tests/unit/type_table_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/type_table_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/type_table_test.cpp.o.d"
  "/root/repo/tests/unit/typerules_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/typerules_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/typerules_test.cpp.o.d"
  "/root/repo/tests/unit/value_test.cpp" "tests/CMakeFiles/zeus_tests.dir/unit/value_test.cpp.o" "gcc" "tests/CMakeFiles/zeus_tests.dir/unit/value_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/zeus.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_blackjack_game "/root/repo/build/examples/blackjack_game")
set_tests_properties(example_blackjack_game PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_systolic_patterns "/root/repo/build/examples/systolic_patterns")
set_tests_properties(example_systolic_patterns PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_layout_gallery "/root/repo/build/examples/layout_gallery")
set_tests_properties(example_layout_gallery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_system "/root/repo/build/examples/memory_system")
set_tests_properties(example_memory_system PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_microcoded_cpu "/root/repo/build/examples/microcoded_cpu")
set_tests_properties(example_microcoded_cpu PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_zeusc "/root/repo/build/examples/zeusc" "--example" "blackjack" "--report" "--sim" "4" "--stats")
set_tests_properties(example_zeusc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")

file(REMOVE_RECURSE
  "CMakeFiles/zeusc.dir/zeusc.cpp.o"
  "CMakeFiles/zeusc.dir/zeusc.cpp.o.d"
  "zeusc"
  "zeusc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeusc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for zeusc.
# This may be replaced when dependencies are built.

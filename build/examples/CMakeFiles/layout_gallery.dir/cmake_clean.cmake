file(REMOVE_RECURSE
  "CMakeFiles/layout_gallery.dir/layout_gallery.cpp.o"
  "CMakeFiles/layout_gallery.dir/layout_gallery.cpp.o.d"
  "layout_gallery"
  "layout_gallery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/layout_gallery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for systolic_patterns.
# This may be replaced when dependencies are built.

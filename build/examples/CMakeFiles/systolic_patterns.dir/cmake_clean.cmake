file(REMOVE_RECURSE
  "CMakeFiles/systolic_patterns.dir/systolic_patterns.cpp.o"
  "CMakeFiles/systolic_patterns.dir/systolic_patterns.cpp.o.d"
  "systolic_patterns"
  "systolic_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/systolic_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

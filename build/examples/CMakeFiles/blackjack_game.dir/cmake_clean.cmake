file(REMOVE_RECURSE
  "CMakeFiles/blackjack_game.dir/blackjack_game.cpp.o"
  "CMakeFiles/blackjack_game.dir/blackjack_game.cpp.o.d"
  "blackjack_game"
  "blackjack_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blackjack_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

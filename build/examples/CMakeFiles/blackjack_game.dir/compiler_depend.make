# Empty compiler generated dependencies file for blackjack_game.
# This may be replaced when dependencies are built.

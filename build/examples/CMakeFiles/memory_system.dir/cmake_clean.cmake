file(REMOVE_RECURSE
  "CMakeFiles/memory_system.dir/memory_system.cpp.o"
  "CMakeFiles/memory_system.dir/memory_system.cpp.o.d"
  "memory_system"
  "memory_system.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_system.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

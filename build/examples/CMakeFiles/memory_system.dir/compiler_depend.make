# Empty compiler generated dependencies file for memory_system.
# This may be replaced when dependencies are built.

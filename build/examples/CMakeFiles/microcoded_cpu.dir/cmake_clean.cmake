file(REMOVE_RECURSE
  "CMakeFiles/microcoded_cpu.dir/microcoded_cpu.cpp.o"
  "CMakeFiles/microcoded_cpu.dir/microcoded_cpu.cpp.o.d"
  "microcoded_cpu"
  "microcoded_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/microcoded_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

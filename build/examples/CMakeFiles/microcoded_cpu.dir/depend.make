# Empty dependencies file for microcoded_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_evaluator_ablation.dir/bench_evaluator_ablation.cpp.o"
  "CMakeFiles/bench_evaluator_ablation.dir/bench_evaluator_ablation.cpp.o.d"
  "bench_evaluator_ablation"
  "bench_evaluator_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_evaluator_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_htree.
# This may be replaced when dependencies are built.

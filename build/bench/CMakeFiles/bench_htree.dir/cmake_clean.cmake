file(REMOVE_RECURSE
  "CMakeFiles/bench_htree.dir/bench_htree.cpp.o"
  "CMakeFiles/bench_htree.dir/bench_htree.cpp.o.d"
  "bench_htree"
  "bench_htree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_htree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

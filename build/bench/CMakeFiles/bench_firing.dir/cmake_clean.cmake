file(REMOVE_RECURSE
  "CMakeFiles/bench_firing.dir/bench_firing.cpp.o"
  "CMakeFiles/bench_firing.dir/bench_firing.cpp.o.d"
  "bench_firing"
  "bench_firing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_firing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_firing.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_ram.
# This may be replaced when dependencies are built.

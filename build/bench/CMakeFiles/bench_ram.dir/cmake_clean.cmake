file(REMOVE_RECURSE
  "CMakeFiles/bench_ram.dir/bench_ram.cpp.o"
  "CMakeFiles/bench_ram.dir/bench_ram.cpp.o.d"
  "bench_ram"
  "bench_ram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

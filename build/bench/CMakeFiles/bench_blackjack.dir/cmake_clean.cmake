file(REMOVE_RECURSE
  "CMakeFiles/bench_blackjack.dir/bench_blackjack.cpp.o"
  "CMakeFiles/bench_blackjack.dir/bench_blackjack.cpp.o.d"
  "bench_blackjack"
  "bench_blackjack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_blackjack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

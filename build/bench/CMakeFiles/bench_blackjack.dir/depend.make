# Empty dependencies file for bench_blackjack.
# This may be replaced when dependencies are built.

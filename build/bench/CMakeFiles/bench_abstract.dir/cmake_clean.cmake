file(REMOVE_RECURSE
  "CMakeFiles/bench_abstract.dir/bench_abstract.cpp.o"
  "CMakeFiles/bench_abstract.dir/bench_abstract.cpp.o.d"
  "bench_abstract"
  "bench_abstract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abstract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_abstract.
# This may be replaced when dependencies are built.

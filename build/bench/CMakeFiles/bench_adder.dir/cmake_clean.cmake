file(REMOVE_RECURSE
  "CMakeFiles/bench_adder.dir/bench_adder.cpp.o"
  "CMakeFiles/bench_adder.dir/bench_adder.cpp.o.d"
  "bench_adder"
  "bench_adder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_adder.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_patternmatch.dir/bench_patternmatch.cpp.o"
  "CMakeFiles/bench_patternmatch.dir/bench_patternmatch.cpp.o.d"
  "bench_patternmatch"
  "bench_patternmatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_patternmatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_patternmatch.
# This may be replaced when dependencies are built.

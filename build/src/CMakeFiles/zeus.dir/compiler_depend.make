# Empty compiler generated dependencies file for zeus.
# This may be replaced when dependencies are built.

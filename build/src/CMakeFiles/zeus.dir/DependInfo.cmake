
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/ast.cpp" "src/CMakeFiles/zeus.dir/ast/ast.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/ast/ast.cpp.o.d"
  "/root/repo/src/ast/printer.cpp" "src/CMakeFiles/zeus.dir/ast/printer.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/ast/printer.cpp.o.d"
  "/root/repo/src/core/compiler.cpp" "src/CMakeFiles/zeus.dir/core/compiler.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/core/compiler.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/zeus.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/core/report.cpp.o.d"
  "/root/repo/src/core/script.cpp" "src/CMakeFiles/zeus.dir/core/script.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/core/script.cpp.o.d"
  "/root/repo/src/corpus/corpus.cpp" "src/CMakeFiles/zeus.dir/corpus/corpus.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/corpus/corpus.cpp.o.d"
  "/root/repo/src/elab/elaborator.cpp" "src/CMakeFiles/zeus.dir/elab/elaborator.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/elab/elaborator.cpp.o.d"
  "/root/repo/src/elab/netlist.cpp" "src/CMakeFiles/zeus.dir/elab/netlist.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/elab/netlist.cpp.o.d"
  "/root/repo/src/layout/geometry.cpp" "src/CMakeFiles/zeus.dir/layout/geometry.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/layout/geometry.cpp.o.d"
  "/root/repo/src/layout/render.cpp" "src/CMakeFiles/zeus.dir/layout/render.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/layout/render.cpp.o.d"
  "/root/repo/src/layout/solver.cpp" "src/CMakeFiles/zeus.dir/layout/solver.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/layout/solver.cpp.o.d"
  "/root/repo/src/lexer/lexer.cpp" "src/CMakeFiles/zeus.dir/lexer/lexer.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/lexer/lexer.cpp.o.d"
  "/root/repo/src/lexer/token.cpp" "src/CMakeFiles/zeus.dir/lexer/token.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/lexer/token.cpp.o.d"
  "/root/repo/src/parser/parser.cpp" "src/CMakeFiles/zeus.dir/parser/parser.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/parser/parser.cpp.o.d"
  "/root/repo/src/sema/checker.cpp" "src/CMakeFiles/zeus.dir/sema/checker.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sema/checker.cpp.o.d"
  "/root/repo/src/sema/const_eval.cpp" "src/CMakeFiles/zeus.dir/sema/const_eval.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sema/const_eval.cpp.o.d"
  "/root/repo/src/sema/env.cpp" "src/CMakeFiles/zeus.dir/sema/env.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sema/env.cpp.o.d"
  "/root/repo/src/sema/type_table.cpp" "src/CMakeFiles/zeus.dir/sema/type_table.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sema/type_table.cpp.o.d"
  "/root/repo/src/sim/firing_evaluator.cpp" "src/CMakeFiles/zeus.dir/sim/firing_evaluator.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/firing_evaluator.cpp.o.d"
  "/root/repo/src/sim/graph.cpp" "src/CMakeFiles/zeus.dir/sim/graph.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/graph.cpp.o.d"
  "/root/repo/src/sim/naive_evaluator.cpp" "src/CMakeFiles/zeus.dir/sim/naive_evaluator.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/naive_evaluator.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/zeus.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/sim/value.cpp" "src/CMakeFiles/zeus.dir/sim/value.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/value.cpp.o.d"
  "/root/repo/src/sim/wave.cpp" "src/CMakeFiles/zeus.dir/sim/wave.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/sim/wave.cpp.o.d"
  "/root/repo/src/support/diagnostics.cpp" "src/CMakeFiles/zeus.dir/support/diagnostics.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/support/diagnostics.cpp.o.d"
  "/root/repo/src/support/source.cpp" "src/CMakeFiles/zeus.dir/support/source.cpp.o" "gcc" "src/CMakeFiles/zeus.dir/support/source.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

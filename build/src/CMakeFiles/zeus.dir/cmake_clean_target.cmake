file(REMOVE_RECURSE
  "libzeus.a"
)

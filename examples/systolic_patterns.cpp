// Reproduces the pattern matcher's "possible computation sequence" figure
// (paper §10): pattern and string bits enter every second clock cycle, and
// once the pipeline fills a result bit leaves the array on every second
// cycle.  The wave table printed here is the machine-generated analogue of
// the figure.
#include <cstdio>

#include "src/core/zeus.h"
#include "src/corpus/corpus.h"

using namespace zeus;

int main() {
  const int kLength = 3;
  std::string source = std::string(corpus::kPatternMatch);
  auto comp = Compilation::fromSource("patternmatch.zeus", source);
  auto design = comp->elaborate("match");
  if (!design) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  SimGraph graph = buildSimGraph(*design, comp->diags());
  Simulation sim(graph);
  WaveRecorder wave(sim);
  wave.watchPort("pattern");
  wave.watchPort("string");
  wave.watchPort("endofpattern", "eop");
  wave.watchPort("result");

  auto setAll = [&](int p, int s, int e, int w) {
    sim.setInput("pattern", logicFromBool(p));
    sim.setInput("string", logicFromBool(s));
    sim.setInput("endofpattern", logicFromBool(e));
    sim.setInput("wild", logicFromBool(w));
  };
  sim.setInput("resultin", Logic::Zero);
  setAll(0, 0, 0, 0);
  sim.setRset(true);
  sim.step(kLength + 2);
  sim.setRset(false);

  // Pattern 1,1,1 repeated; string all ones -> match on every window.
  std::printf("pattern 111 against string 1111... (every 2nd cycle):\n\n");
  for (int beat = 0; beat < 14; ++beat) {
    setAll(1, 1, beat % kLength == kLength - 1, 0);
    sim.step();
    wave.sample();
    setAll(0, 0, 0, 0);  // idle phase: 0s enter the circuit
    sim.step();
    wave.sample();
  }
  std::printf("%s\n", wave.renderTable().c_str());

  // Same with a mismatching string.
  Simulation sim2(graph);
  WaveRecorder wave2(sim2);
  wave2.watchPort("result");
  sim2.setInput("resultin", Logic::Zero);
  sim2.setInput("pattern", Logic::Zero);
  sim2.setInput("string", Logic::Zero);
  sim2.setInput("endofpattern", Logic::Zero);
  sim2.setInput("wild", Logic::Zero);
  sim2.setRset(true);
  sim2.step(kLength + 2);
  sim2.setRset(false);
  for (int beat = 0; beat < 14; ++beat) {
    sim2.setInput("pattern", Logic::One);
    sim2.setInput("string", Logic::Zero);  // never matches
    sim2.setInput("endofpattern",
                  logicFromBool(beat % kLength == kLength - 1));
    sim2.step();
    wave2.sample();
    sim2.setInput("pattern", Logic::Zero);
    sim2.setInput("endofpattern", Logic::Zero);
    sim2.step();
    wave2.sample();
  }
  std::printf("pattern 111 against string 0000...:\n\n%s\n",
              wave2.renderTable().c_str());

  if (!sim.errors().empty() || !sim2.errors().empty()) {
    std::printf("runtime errors: %zu\n",
                sim.errors().size() + sim2.errors().size());
    return 1;
  }
  std::printf("no runtime multiple-assignment errors — the systolic\n"
              "schedule keeps every multiplex signal single-driven.\n");
  return 0;
}

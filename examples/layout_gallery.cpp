// Layout gallery: solves the layout language (§6) for the paper's
// geometric examples and prints ASCII floorplans — the H-tree with its
// linear-area property, the recursive broadcast tree, the ripple-carry
// adder row and the chessboard of replaced virtual signals.
#include <cstdio>
#include <string>

#include "src/core/zeus.h"
#include "src/corpus/corpus.h"
#include "src/layout/render.h"

using namespace zeus;

namespace {

void show(const char* title, const std::string& source,
          const std::string& top) {
  auto comp = Compilation::fromSource(std::string(title) + ".zeus", source);
  auto design = comp->ok() ? comp->elaborate(top) : nullptr;
  if (!design) {
    std::fprintf(stderr, "%s: %s", title, comp->diagnosticsText().c_str());
    return;
  }
  LayoutResult lr = solveLayout(*design, comp->diags());
  std::printf("--- %s: %lldx%lld cells, %zu leaves, area %lld ---\n", title,
              static_cast<long long>(lr.bounds.w),
              static_cast<long long>(lr.bounds.h), lr.leafCount(),
              static_cast<long long>(lr.bounds.area()));
  std::printf("%s\n", renderAscii(lr).c_str());
}

}  // namespace

int main() {
  show("ripple-carry adder (8 bits)",
       std::string(corpus::kAdders) + "SIGNAL adder: rippleCarry(8);\n",
       "adder");
  show("recursive tree (16 leaves)",
       std::string(corpus::kTreeRecursive) + "SIGNAL a: tree(16);\n", "a");
  for (int n : {16, 64, 256}) {
    show(("htree(" + std::to_string(n) + ")").c_str(),
         std::string(corpus::kHtree) + "SIGNAL a: htree(" +
             std::to_string(n) + ");\n",
         "a");
  }
  show("chessboard(4)", corpus::kChessboard, "board");
  show("pattern matcher (7 cells)",
       std::string(corpus::kPatternMatch) +
           "SIGNAL m: patternmatch(7);\n",
       "m");

  std::printf(
      "The H-tree demonstrates the paper's linear-area claim: area(n) = n\n"
      "cells for n leaves, versus the O(n log n)-aspect row layout of the\n"
      "naive tree.\n");
  return 0;
}

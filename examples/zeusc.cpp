// zeusc — the Zeus compiler driver.
//
// Usage:
//   zeusc <file.zeus> --top <signal> [options]
//   zeusc --example <name> [options]          (built-in paper programs)
//   zeusc --list-examples
//
// Options:
//   --dump-ast           print the parsed program
//   --dump-netlist       print nets and nodes of the elaborated design
//   --layout             solve the layout and print the ASCII floorplan
//   --svg <file>         write the layout as SVG
//   --sim <cycles>       simulate N cycles (inputs all 0) and print ports
//   --naive              use the naive fixpoint evaluator
//   --levelized          use the statically scheduled levelized evaluator
//   --compiled           use the native codegen backend: emit C++ for the
//                        design, compile it with the host toolchain and
//                        hot-load it (docs/codegen.md).  Falls back to the
//                        levelized interpreter — with a notice on stderr —
//                        when no toolchain is available or codegen fails.
//                        Applies to --sim, --script, --farm-threads and
//                        (as the default engine) --serve-batch.
//   --emit-cpp <file>    write the generated C++ for the design and
//                        continue; needs no host toolchain
//   --codegen-cache-dir <dir>  compiled-artifact cache directory
//                        (default: $ZEUS_CODEGEN_CACHE_DIR, else the
//                        system temp dir)
//   --stats              print the phase/counter/activity summary table
//   --trace <file>       write phase spans as Chrome trace_event JSON
//                        (load in Perfetto / chrome://tracing)
//   --metrics <file>     write the zeus-metrics-v1 JSON report
//                        (schema in docs/observability.md)
//   --report             print design statistics and the instance tree
//   --script <file>      run a testbench script (set/step/expect/...)
//   --dot <file>         write the semantics graph as GraphViz dot
//   --lint               run the static lint pass (docs/lint.md)
//   --lint-json          print lint findings as JSON (implies --lint)
//   --lint-depth <n>     combinational-depth lint threshold (default 256)
//   --lint-fanout <n>    fanout hot-spot lint threshold (default 64)
//   -O0 / -O1            optimization level (default -O1: const-fold, DCE,
//                        alias collapse; docs/optimizer.md).  The post-pass
//                        verifier runs at every level.
//   --opt-stats          print the zeus-opt-v1 JSON report (pure JSON on
//                        stdout, like --lint-json)
//   --fault-campaign     run a parallel stuck-at fault campaign over the
//                        design (--sim N sets cycles per fault, default 32)
//   --fault-out <file>   write the zeus-faults-v1 JSON report (else stdout)
//   --fault-seed <n>     stimulus seed for the fault campaign
//   --checkpoint <file>  write a resumable checkpoint (ZSNP binary); with
//                        --sim, saved at the end and on budget trips; with
//                        --fault-campaign, saved at batch boundaries
//   --checkpoint-every <n>  checkpoint cadence: every n cycles (--sim) or
//                        every n fault batches (--fault-campaign)
//   --resume <file>      resume from a checkpoint (kind auto-detected)
//   --sim-budget-ms <n>  wall-clock budget; a trip writes the checkpoint
//                        and partial metrics, then exits with code 12
//                        (11 = evaluator watchdog, docs/fault-injection.md)
//   --die-at-cycle <n>   raise a fatal signal after n evaluated cycles
//                        (crash-recovery testing)
//   --die-signal <s>     signal for --die-at-cycle: "kill" (default; the
//                        unbufferable power-cut) or "abort" (SIGABRT, so
//                        the flight recorder writes its crash dump first)
//   --sim-watchdog <n>   evaluator watchdog: abort a cycle after n
//                        firing events (0 = the design-derived default)
//   --log <file>         write the structured event log as zeus-log-v1
//                        JSONL (docs/observability.md)
//   --crash-dump <file>  flight-recorder dump path (default
//                        .zeus-crash.json); written on SIGSEGV/SIGABRT
//                        and on watchdog/budget faults
//   --version            print the build-info stamp and exit
//   --farm-threads <n>   run --sim through the multi-core simulation farm
//                        with n worker threads (docs/simulator.md)
//   --lanes <n>          total farm lanes (default 64; split into 64-lane
//                        blocks that the worker threads claim)
//   --farm-seed <n>      root seed for the farm's per-lane RANDOM streams
//                        and stimulus (default 0xC0FFEE)
//   --serve-batch <file> run a zeus-serve-request-v1 JSON request file:
//                        compile each distinct design once, fan the
//                        requests across the farm, emit zeus-serve-v1
//   --serve-out <file>   write the serve-batch response there (else stdout)
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "src/ast/printer.h"
#include "src/codegen/compiled.h"
#include "src/codegen/emit.h"
#include "src/core/zeus.h"
#include "src/corpus/corpus.h"
#include "src/core/batch_serve.h"
#include "src/core/report.h"
#include "src/core/script.h"
#include "src/core/sim_farm.h"
#include "src/layout/render.h"
#include "src/sim/snapshot.h"
#include "src/support/buildinfo.h"
#include "src/support/eventlog.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: zeusc <file.zeus> --top <signal> [--dump-ast] "
               "[--dump-netlist] [--layout] [--svg out.svg] [--sim N] "
               "[--naive] [--levelized] [--compiled] [--emit-cpp out.cpp] "
               "[--codegen-cache-dir dir] "
               "[--stats] [--lint] [--lint-json] "
               "[--lint-depth N] [--lint-fanout N] [-O0|-O1] [--opt-stats] "
               "[--trace out.json] "
               "[--metrics out.json] [--fault-campaign] [--fault-out f.json] "
               "[--fault-seed N] [--checkpoint f.snap] [--checkpoint-every N] "
               "[--resume f.snap] [--sim-budget-ms N] [--die-at-cycle N] "
               "[--die-signal kill|abort] [--sim-watchdog N] "
               "[--log out.jsonl] [--crash-dump f.json] "
               "[--farm-threads N] [--lanes N] [--farm-seed N]\n"
               "       zeusc --example <name> [options]\n"
               "       zeusc --serve-batch requests.json [--serve-out r.json]\n"
               "       zeusc --list-examples\n");
  return 2;
}

/// Upper bounds for numeric flags.  Several call sites narrow the parsed
/// long into uint32_t or int downstream; an explicit per-flag ceiling
/// turns what used to be a silent wrap into a parse error.
constexpr long kMaxU32 = 0xFFFFFFFFL;            ///< narrowed to uint32_t
constexpr long kMaxCycles = 1'000'000'000'000L;  ///< cycle/cadence counts
constexpr long kMaxMillis = 1'000'000'000L;      ///< wall-clock budgets

/// Strict decimal parse for numeric flags: rejects empty, non-numeric,
/// trailing-junk, negative and out-of-range arguments instead of silently
/// reading 0 (std::atol would turn "--sim abc" into zero cycles) or
/// wrapping at a later narrowing cast.
bool parseCount(const char* flag, const char* text, long& out,
                long maxValue = std::numeric_limits<long>::max()) {
  if (!text || !*text) {
    std::fprintf(stderr, "zeusc: %s expects a non-negative integer\n", flag);
    return false;
  }
  errno = 0;
  char* end = nullptr;
  long v = std::strtol(text, &end, 10);
  if (errno != 0 || end == text || *end != '\0' || v < 0) {
    std::fprintf(stderr,
                 "zeusc: invalid argument '%s' to %s (expected a "
                 "non-negative integer)\n",
                 text, flag);
    return false;
  }
  if (v > maxValue) {
    std::fprintf(stderr, "zeusc: %s value %ld is out of range (max %ld)\n",
                 flag, v, maxValue);
    return false;
  }
  out = v;
  return true;
}

bool writeFile(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string file, top, example, svgOut;
  bool dumpAst = false, dumpNetlist = false, layout = false, naive = false;
  bool levelized = false, compiled = false, stats = false, report = false;
  std::string emitCppOut, codegenCacheDir;
  bool lint = false, lintJson = false;
  int optLevel = 1;
  bool optStats = false;
  std::string dotOut, scriptFile, traceOut, metricsOut;
  long simCycles = -1;
  long lintDepth = -1, lintFanout = -1;
  bool faultCampaign = false;
  std::string faultOut, checkpointFile, resumeFile;
  long faultSeed = -1, checkpointEvery = -1, simBudgetMs = -1;
  long dieAtCycle = -1;
  bool dieAbort = false;
  long simWatchdog = -1;
  long farmThreads = -1, farmLanes = -1, farmSeed = -1;
  std::string serveBatchFile, serveOutFile;
  std::string logOut;
  std::string crashDump = ".zeus-crash.json";

  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--top") {
      const char* v = next();
      if (!v) return usage();
      top = v;
    } else if (arg == "--example") {
      const char* v = next();
      if (!v) return usage();
      example = v;
    } else if (arg == "--list-examples") {
      for (const zeus::corpus::CorpusEntry& e : zeus::corpus::all()) {
        std::printf("%-16s %s\n", e.name, e.description);
      }
      return 0;
    } else if (arg == "--dump-ast") {
      dumpAst = true;
    } else if (arg == "--dump-netlist") {
      dumpNetlist = true;
    } else if (arg == "--layout") {
      layout = true;
    } else if (arg == "--svg") {
      const char* v = next();
      if (!v) return usage();
      svgOut = v;
    } else if (arg == "--sim") {
      const char* v = next();
      if (!parseCount("--sim", v, simCycles, kMaxCycles)) return 2;
    } else if (arg == "-O0") {
      optLevel = 0;
    } else if (arg == "-O1") {
      optLevel = 1;
    } else if (arg == "--opt-stats") {
      optStats = true;
    } else if (arg == "--lint") {
      lint = true;
    } else if (arg == "--lint-json") {
      lint = true;
      lintJson = true;
    } else if (arg == "--lint-depth") {
      const char* v = next();
      if (!parseCount("--lint-depth", v, lintDepth, kMaxU32)) return 2;
      lint = true;
    } else if (arg == "--lint-fanout") {
      const char* v = next();
      if (!parseCount("--lint-fanout", v, lintFanout, kMaxU32)) return 2;
      lint = true;
    } else if (arg == "--naive") {
      naive = true;
    } else if (arg == "--levelized") {
      levelized = true;
    } else if (arg == "--compiled") {
      compiled = true;
    } else if (arg == "--emit-cpp") {
      const char* v = next();
      if (!v) return usage();
      emitCppOut = v;
    } else if (arg == "--codegen-cache-dir") {
      const char* v = next();
      if (!v) return usage();
      codegenCacheDir = v;
    } else if (arg == "--stats") {
      stats = true;
    } else if (arg == "--report") {
      report = true;
    } else if (arg == "--dot") {
      const char* v = next();
      if (!v) return usage();
      dotOut = v;
    } else if (arg == "--script") {
      const char* v = next();
      if (!v) return usage();
      scriptFile = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage();
      traceOut = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return usage();
      metricsOut = v;
    } else if (arg == "--fault-campaign") {
      faultCampaign = true;
    } else if (arg == "--fault-out") {
      const char* v = next();
      if (!v) return usage();
      faultOut = v;
    } else if (arg == "--fault-seed") {
      const char* v = next();
      // The seed widens to uint64_t: any non-negative long is in range.
      if (!parseCount("--fault-seed", v, faultSeed)) return 2;
    } else if (arg == "--checkpoint") {
      const char* v = next();
      if (!v) return usage();
      checkpointFile = v;
    } else if (arg == "--checkpoint-every") {
      const char* v = next();
      if (!parseCount("--checkpoint-every", v, checkpointEvery, kMaxCycles)) {
        return 2;
      }
    } else if (arg == "--resume") {
      const char* v = next();
      if (!v) return usage();
      resumeFile = v;
    } else if (arg == "--sim-budget-ms") {
      const char* v = next();
      if (!parseCount("--sim-budget-ms", v, simBudgetMs, kMaxMillis)) return 2;
    } else if (arg == "--die-at-cycle") {
      const char* v = next();
      if (!parseCount("--die-at-cycle", v, dieAtCycle, kMaxCycles)) return 2;
    } else if (arg == "--die-signal") {
      const char* v = next();
      if (!v) return usage();
      if (std::strcmp(v, "kill") == 0) {
        dieAbort = false;
      } else if (std::strcmp(v, "abort") == 0) {
        dieAbort = true;
      } else {
        std::fprintf(stderr,
                     "zeusc: --die-signal expects 'kill' or 'abort'\n");
        return 2;
      }
    } else if (arg == "--sim-watchdog") {
      const char* v = next();
      if (!parseCount("--sim-watchdog", v, simWatchdog, kMaxU32)) return 2;
    } else if (arg == "--log") {
      const char* v = next();
      if (!v) return usage();
      logOut = v;
    } else if (arg == "--crash-dump") {
      const char* v = next();
      if (!v) return usage();
      crashDump = v;
    } else if (arg == "--version") {
      std::printf("%s\n", zeus::buildinfo::versionLine().c_str());
      return 0;
    } else if (arg == "--farm-threads") {
      const char* v = next();
      if (!parseCount("--farm-threads", v, farmThreads, 256)) return 2;
      if (farmThreads == 0) {
        std::fprintf(stderr, "zeusc: --farm-threads expects at least 1\n");
        return 2;
      }
    } else if (arg == "--lanes") {
      const char* v = next();
      if (!parseCount("--lanes", v, farmLanes, 1 << 20)) return 2;
      if (farmLanes == 0) {
        std::fprintf(stderr, "zeusc: --lanes expects at least 1\n");
        return 2;
      }
    } else if (arg == "--farm-seed") {
      const char* v = next();
      // The seed widens to uint64_t: any non-negative long is in range.
      if (!parseCount("--farm-seed", v, farmSeed)) return 2;
    } else if (arg == "--serve-batch") {
      const char* v = next();
      if (!v) return usage();
      serveBatchFile = v;
    } else if (arg == "--serve-out") {
      const char* v = next();
      if (!v) return usage();
      serveOutFile = v;
    } else if (!arg.empty() && arg[0] != '-') {
      file = arg;
    } else {
      return usage();
    }
  }
  if ((naive && levelized) || (naive && compiled) || (levelized && compiled)) {
    std::fprintf(stderr,
                 "zeusc: choose at most one of --naive, --levelized, "
                 "--compiled\n");
    return 2;
  }

  // The flight recorder is always armed: any zeusc that dies on
  // SIGSEGV/SIGABRT — or trips a watchdog/budget fault below — leaves a
  // zeus-crash-v1 post-mortem behind.  (--die-at-cycle's default SIGKILL
  // is uncatchable by design: the crash-recovery tests want a power cut.)
  zeus::flightrec::arm(crashDump.c_str());
  if (!logOut.empty()) zeus::eventlog::setEnabled(true);
  auto emitLog = [&]() {
    if (logOut.empty()) return;
    if (writeFile(logOut, zeus::eventlog::renderJsonl())) {
      std::printf("wrote %s\n", logOut.c_str());
    }
  };

  // Batch-request mode stands alone: it compiles and simulates per
  // request, so the usual <file>/--top requirement does not apply.
  if (!serveBatchFile.empty()) {
    std::ifstream in(serveBatchFile);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", serveBatchFile.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    zeus::ServeOptions sopts;
    if (farmThreads > 0) sopts.defaultThreads = static_cast<size_t>(farmThreads);
    if (farmLanes > 0) sopts.defaultLanes = static_cast<size_t>(farmLanes);
    if (simCycles >= 0) sopts.defaultCycles = static_cast<uint64_t>(simCycles);
    if (farmSeed >= 0) sopts.defaultSeed = static_cast<uint64_t>(farmSeed);
    sopts.defaultOptLevel = optLevel;
    sopts.defaultCompiled = compiled;
    sopts.codegenCacheDir = codegenCacheDir;
    zeus::ServeStats sstats;
    std::string response = zeus::runServeBatch(ss.str(), sopts, &sstats);
    if (!serveOutFile.empty()) {
      if (!writeFile(serveOutFile, response)) return 1;
      std::printf("wrote %s\n", serveOutFile.c_str());
    } else {
      std::printf("%s", response.c_str());
    }
    std::fprintf(stderr,
                 "serve-batch: %zu request(s), %zu compile(s), %zu cache "
                 "hit(s), %zu failure(s)\n",
                 sstats.requests, sstats.compiles, sstats.cacheHits,
                 sstats.failures);
    emitLog();
    return sstats.failures == 0 ? 0 : 1;
  }

  std::string source, name;
  if (!example.empty()) {
    // Overriding --top opts out of the default instantiation line that
    // corpus::instantiate appends for the parameterized families.
    const zeus::corpus::CorpusEntry* e = zeus::corpus::find(example);
    if (!e) {
      std::fprintf(stderr, "unknown example '%s' (try --list-examples)\n",
                   example.c_str());
      return 2;
    }
    name = std::string(e->name) + ".zeus";
    if (!top.empty()) {
      source = e->source;
    } else {
      zeus::corpus::instantiate(example, source, top);
    }
  } else {
    if (file.empty() || top.empty()) return usage();
    std::ifstream in(file);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", file.c_str());
      return 1;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    source = ss.str();
    name = file;
  }

  // Spans are recorded from the very first pipeline phase, so tracing has
  // to be switched on before Compilation::fromSource runs the lexer.
  // --stats reuses the phase timings for its summary table.
  if (!traceOut.empty() || !metricsOut.empty() || stats) {
    zeus::trace::setEnabled(true);
  }

  auto comp = zeus::Compilation::fromSource(name, source);

  zeus::metrics::MetricsReport mreport;
  mreport.design = top;
  // Flushes the observability sinks; called on *every* exit path once a
  // Compilation exists, so failed runs still leave partial trace/metrics
  // files behind (the report simply carries sim.ran = false).
  auto emitSinks = [&]() {
    mreport.resources = comp->resourceReport();
    mreport.phases = zeus::metrics::phaseTimings();
    if (!traceOut.empty() &&
        writeFile(traceOut, zeus::trace::renderChromeJson())) {
      std::printf("wrote %s\n", traceOut.c_str());
    }
    if (!metricsOut.empty() && writeFile(metricsOut, mreport.renderJson())) {
      std::printf("wrote %s\n", metricsOut.c_str());
    }
    emitLog();
  };
  // Failure exit: show how close the run came to its resource budgets
  // (the usual first question when a compile or simulation dies), then
  // flush whatever observability data accumulated before the failure.
  auto fail = [&](int rc) {
    std::fprintf(stderr, "%s", comp->resourceReport().render().c_str());
    emitSinks();
    return rc;
  };

  if (dumpAst) std::printf("%s\n", zeus::ast::dump(comp->program()).c_str());
  if (!comp->ok()) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return fail(1);
  }
  auto design = comp->elaborate(top);
  std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
  if (!design) return fail(1);

  // --lint-json and --opt-stats promise pure JSON on stdout.
  if (!lintJson && !optStats) {
    std::printf("design '%s': %zu nets, %zu nodes, %zu ports\n", top.c_str(),
                design->netlist.netCount(), design->netlist.nodeCount(),
                design->ports.size());
  }

  if (lint) {
    zeus::LintOptions lopts;
    if (lintDepth >= 0) lopts.maxDepth = static_cast<uint32_t>(lintDepth);
    if (lintFanout >= 0) lopts.maxFanout = static_cast<uint32_t>(lintFanout);
    zeus::LintReport lr = comp->lint(*design, lopts);
    if (lintJson) {
      std::printf("%s", lr.renderJson(comp->sources(), top).c_str());
    } else {
      std::printf("%s", lr.renderText(comp->sources()).c_str());
    }
    if (lr.hasErrors()) return fail(1);
  }

  // Optimization pipeline + post-pass verifier (docs/optimizer.md).  Runs
  // after lint (findings refer to pre-optimization structure) and before
  // any graph the later stages build or simulate.  -O0 still verifies.
  {
    zeus::OptOptions oopts;
    oopts.level = optLevel;
    zeus::OptReport optReport = comp->optimize(*design, oopts);
    if (optStats) std::printf("%s", optReport.renderJson(top).c_str());
    if (!comp->ok()) {
      std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
      return fail(1);
    }
  }

  if (dumpNetlist) {
    for (zeus::NetId i = 0; i < design->netlist.netCount(); ++i) {
      const zeus::Net& n = design->netlist.net(i);
      zeus::NetId root = design->netlist.find(i);
      std::printf("  net %-40s %-9s%s%s\n", n.name.c_str(),
                  n.kind == zeus::BasicKind::Boolean ? "boolean" : "multiplex",
                  root != i ? (" == " + design->netlist.net(root).name).c_str()
                            : "",
                  n.isPrimaryInput    ? " [in]"
                  : n.isPrimaryOutput ? " [out]"
                                      : "");
    }
    for (const zeus::Node& node : design->netlist.nodes()) {
      std::printf("  %-7s ->%s\n",
                  std::string(zeus::nodeOpName(node.op)).c_str(),
                  node.output != zeus::kNoNet
                      ? (" " + design->netlist.net(node.output).name).c_str()
                      : "");
    }
  }

  if (report) {
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    zeus::checkSequentialOrder(*design, graph, comp->diags());
    zeus::DesignStats ds = zeus::computeStats(*design, graph);
    std::printf("%s", zeus::renderStats(ds).c_str());
    std::printf("%s", zeus::renderInstanceTree(*design).c_str());
  }
  if (!dotOut.empty()) {
    std::ofstream out(dotOut);
    out << zeus::exportDot(*design);
    std::printf("wrote %s\n", dotOut.c_str());
  }

  // Standalone codegen dump (docs/codegen.md): emit the exact translation
  // unit the compiled engine would build, without needing a toolchain.
  if (!emitCppOut.empty()) {
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    if (graph.hasCycle) {
      std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
      return fail(1);
    }
    zeus::codegen::EmitOptions eopts;
    eopts.optLevel = static_cast<uint32_t>(optLevel);
    zeus::codegen::EmitResult er =
        zeus::codegen::emitCompiledCpp(graph, eopts);
    if (!er.ok) {
      std::fprintf(stderr, "zeusc: --emit-cpp failed: %s\n",
                   er.error.c_str());
      return fail(1);
    }
    if (!writeFile(emitCppOut, er.source)) return fail(1);
    std::printf("wrote %s\n", emitCppOut.c_str());
  }

  if (layout || !svgOut.empty()) {
    zeus::LayoutResult lr = zeus::solveLayout(*design, comp->diags());
    std::printf("layout: %lldx%lld cells, %zu leaf cells\n",
                static_cast<long long>(lr.bounds.w),
                static_cast<long long>(lr.bounds.h), lr.leafCount());
    if (layout) std::printf("%s", zeus::renderAscii(lr).c_str());
    if (!svgOut.empty()) {
      std::ofstream out(svgOut);
      out << zeus::renderSvg(lr);
      std::printf("wrote %s\n", svgOut.c_str());
    }
  }

  const zeus::EvaluatorKind evalKind =
      naive        ? zeus::EvaluatorKind::Naive
      : levelized  ? zeus::EvaluatorKind::Levelized
      : compiled   ? zeus::EvaluatorKind::Compiled
                   : zeus::EvaluatorKind::Firing;
  const bool wantActivity = stats || !metricsOut.empty();
  // Emits + compiles + hot-loads the design's native engine; on any
  // failure (no toolchain, emitter refusal, compile error) returns null
  // after printing the fallback notice — callers then run the levelized
  // interpreter, which computes identical results.
  auto loadCompiled = [&](const zeus::SimGraph& graph)
      -> std::shared_ptr<const zeus::codegen::CompiledDesign> {
    zeus::codegen::CodegenOptions copts;
    copts.cacheDir = codegenCacheDir;
    copts.optLevel = static_cast<uint32_t>(optLevel);
    std::string err;
    auto d = zeus::codegen::CompiledDesign::load(graph, copts, err);
    if (!d) {
      std::fprintf(stderr,
                   "zeusc: codegen unavailable (%s); falling back to the "
                   "levelized interpreter\n",
                   err.c_str());
    }
    return d;
  };

  if (!scriptFile.empty()) {
    std::ifstream in(scriptFile);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", scriptFile.c_str());
      return fail(1);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    if (graph.hasCycle) return fail(1);
    zeus::Simulation::Options sopts;
    sopts.evaluator = evalKind;
    sopts.profileActivity = wantActivity;
    if (compiled) sopts.compiled = loadCompiled(graph);
    zeus::Simulation sim(graph, sopts);
    zeus::ScriptResult sr = zeus::runScript(sim, ss.str());
    comp->recordSimulation(sim);
    mreport.sim = sim.metricsCounters();
    mreport.activity = sim.activityReport();
    std::printf("%s", sr.log.c_str());
    std::printf("script: %d expectation(s) checked, %s\n",
                sr.expectationsChecked, sr.ok ? "PASS" : "FAIL");
    if (!sr.ok) return fail(1);
  }

  // Parallel fault-simulation campaign (docs/fault-injection.md): lane 0
  // golden, every other lane one stuck-at fault, classified against the
  // primary outputs.  --sim N sets the cycles per fault batch.
  if (faultCampaign) {
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    if (graph.hasCycle) {
      std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
      return fail(1);
    }
    zeus::FaultCampaignOptions fopts;
    if (simCycles > 0) fopts.cycles = static_cast<uint64_t>(simCycles);
    if (faultSeed >= 0) fopts.seed = static_cast<uint64_t>(faultSeed);
    if (simBudgetMs >= 0) fopts.maxMillis = static_cast<uint64_t>(simBudgetMs);
    fopts.checkpointEveryBatches =
        checkpointEvery > 0 ? static_cast<uint64_t>(checkpointEvery)
        : !checkpointFile.empty() ? 1
                                  : 0;
    if (!checkpointFile.empty()) {
      fopts.onCheckpoint = [&](const zeus::CampaignProgress& progress) {
        std::string err;
        if (!zeus::saveCampaignFile(checkpointFile, progress, err)) {
          std::fprintf(stderr, "zeusc: checkpoint write failed: %s\n",
                       err.c_str());
        }
      };
    }
    if (dieAtCycle >= 0) {
      // Crash-injection hook for the recovery tests: the process vanishes
      // mid-campaign exactly as a power cut would, after the last
      // batch-boundary checkpoint landed atomically.
      fopts.onCycle = [&](uint64_t evaluated) {
        if (evaluated >= static_cast<uint64_t>(dieAtCycle)) {
          std::fflush(nullptr);
          // "abort" dies through the flight-recorder handler (crash dump,
          // then SIGABRT); "kill" stays the uncatchable power cut.
          raise(dieAbort ? SIGABRT : SIGKILL);
        }
      };
    }
    zeus::CampaignProgress progress;
    bool haveResume = false;
    if (!resumeFile.empty()) {
      std::string err;
      if (!zeus::loadCampaignFile(resumeFile, progress, err)) {
        std::fprintf(stderr, "zeusc: cannot resume from %s: %s\n",
                     resumeFile.c_str(), err.c_str());
        return fail(1);
      }
      haveResume = true;
    }
    zeus::FaultCampaignReport fr;
    try {
      fr = zeus::runFaultCampaign(graph, fopts,
                                  haveResume ? &progress : nullptr);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "zeusc: %s\n", e.what());
      if (std::string(e.what()).find("does not match this campaign") !=
          std::string::npos) {
        std::fprintf(stderr,
                     "zeusc: note: campaign checkpoints depend on the "
                     "optimization level; rerun with the -O flag the "
                     "checkpoint was written with (docs/optimizer.md)\n");
      }
      return fail(1);
    }
    std::string json = fr.renderJson();
    if (!faultOut.empty()) {
      if (!writeFile(faultOut, json)) return fail(1);
      std::printf("wrote %s\n", faultOut.c_str());
    } else {
      std::printf("%s", json.c_str());
    }
    std::printf(
        "fault campaign: %llu faults, %llu detected, %llu masked, "
        "%llu undetected, coverage %.1f%%%s\n",
        static_cast<unsigned long long>(fr.faults.size()),
        static_cast<unsigned long long>(
            fr.countOf(zeus::FaultOutcome::Status::Detected)),
        static_cast<unsigned long long>(
            fr.countOf(zeus::FaultOutcome::Status::Masked)),
        static_cast<unsigned long long>(
            fr.countOf(zeus::FaultOutcome::Status::Undetected)),
        100.0 * fr.coverage(), fr.interrupted ? " (interrupted)" : "");
    emitSinks();
    if (fr.interrupted) {
      // Exit 12 = wall-clock budget trip (checkpoint + partial metrics
      // were already flushed above; 11 is the evaluator watchdog).
      std::fprintf(stderr,
                   "zeusc: campaign stopped by --sim-budget-ms; resume "
                   "with --resume %s\n",
                   checkpointFile.empty() ? "<checkpoint>"
                                          : checkpointFile.c_str());
      zeus::flightrec::dumpNow("budget");
      return 12;
    }
    return 0;
  }

  // Multi-core simulation farm (docs/simulator.md): N worker threads ×
  // 64-lane batch blocks, deterministic per-lane stimulus and RANDOM
  // streams.  Replaces the scalar --sim loop below when requested.
  if (farmThreads > 0) {
    if (simCycles < 0) {
      std::fprintf(stderr, "zeusc: --farm-threads requires --sim N\n");
      return fail(2);
    }
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    if (graph.hasCycle) {
      std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
      return fail(1);
    }
    zeus::FarmOptions fopts;
    fopts.threads = static_cast<size_t>(farmThreads);
    if (farmLanes > 0) fopts.lanes = static_cast<size_t>(farmLanes);
    fopts.cycles = static_cast<uint64_t>(simCycles);
    if (farmSeed >= 0) fopts.seed = static_cast<uint64_t>(farmSeed);
    if (compiled) fopts.compiled = loadCompiled(graph);
    zeus::FarmSnapshot resume;
    bool haveResume = false;
    if (!resumeFile.empty()) {
      std::string err;
      if (!zeus::loadFarmFile(resumeFile, resume, err)) {
        std::fprintf(stderr, "zeusc: cannot resume from %s: %s\n",
                     resumeFile.c_str(), err.c_str());
        return fail(1);
      }
      haveResume = true;
    }
    if (!checkpointFile.empty()) {
      fopts.checkpointAtCycle = checkpointEvery > 0
                                    ? static_cast<uint64_t>(checkpointEvery)
                                    : fopts.cycles;
      fopts.onCheckpoint = [&](const zeus::FarmSnapshot& snap) {
        std::string err;
        if (!zeus::saveFarmFile(checkpointFile, snap, err)) {
          std::fprintf(stderr, "zeusc: checkpoint write failed: %s\n",
                       err.c_str());
        }
      };
    }
    zeus::FarmReport fr;
    try {
      fr = zeus::runFarm(graph, fopts, haveResume ? &resume : nullptr);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "zeusc: %s\n", e.what());
      if (std::string(e.what()).find("content hash") != std::string::npos) {
        std::fprintf(stderr,
                     "zeusc: note: checkpoints depend on the optimization "
                     "level; rerun with the -O flag the checkpoint was "
                     "written with (docs/optimizer.md)\n");
      }
      return fail(1);
    }
    for (const zeus::SimError& e : fr.errors) {
      std::printf("  runtime error, cycle %llu, lane %d, %s: %s\n",
                  static_cast<unsigned long long>(e.cycle), e.lane,
                  e.netName.c_str(), e.message.c_str());
    }
    std::printf(
        "farm: %llu cycle(s) x %zu lane(s), %zu block(s) on %zu "
        "thread(s), checksum %016llx, %zu error(s), %.3g lane-cycles/s\n",
        static_cast<unsigned long long>(fr.cycles), fr.lanes, fr.blocks,
        fr.threads, static_cast<unsigned long long>(fr.mergedChecksum()),
        fr.errors.size(), fr.laneCyclesPerSec());
    mreport.sim = zeus::farmMetricsCounters(fr);
    mreport.latency.push_back(
        zeus::histogram::snapshot(fr.blockUs, "farm.block_us", "us"));
    if (stats) {
      mreport.resources = comp->resourceReport();
      mreport.phases = zeus::metrics::phaseTimings();
      std::printf("%s", mreport.renderText().c_str());
    }
    emitSinks();
    return 0;
  }

  if (simCycles >= 0) {
    zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
    if (graph.hasCycle) {
      std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
      return fail(1);
    }
    zeus::Simulation::Options sopts;
    sopts.evaluator = evalKind;
    sopts.profileActivity = wantActivity;
    if (compiled) sopts.compiled = loadCompiled(graph);
    if (simBudgetMs >= 0) sopts.maxSimMillis = static_cast<uint64_t>(simBudgetMs);
    if (simWatchdog >= 0) {
      sopts.maxEventsPerCycle = static_cast<uint64_t>(simWatchdog);
    }
    zeus::Simulation sim(graph, sopts);
    // Checkpoint/resume/budget/crash flags switch the run from one big
    // step() into cycle-by-cycle stepping so state can be saved (and the
    // wall clock checked) at every cycle boundary.  An explicit
    // --sim-watchdog opts into the same budget-fault handling (exit 11 +
    // flight-recorder dump).
    const bool chunked = !checkpointFile.empty() || checkpointEvery > 0 ||
                         !resumeFile.empty() || simBudgetMs >= 0 ||
                         dieAtCycle >= 0 || simWatchdog >= 0;
    int simRc = 0;
    if (!resumeFile.empty()) {
      zeus::SimSnapshot snap;
      std::string err;
      if (!zeus::loadSnapshotFile(resumeFile, snap, err)) {
        std::fprintf(stderr, "zeusc: cannot resume from %s: %s\n",
                     resumeFile.c_str(), err.c_str());
        return fail(1);
      }
      try {
        sim.restoreSnapshot(snap);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "zeusc: cannot resume from %s: %s\n",
                     resumeFile.c_str(), e.what());
        if (std::string(e.what()).find("content hash") != std::string::npos) {
          std::fprintf(stderr,
                       "zeusc: note: checkpoints depend on the optimization "
                       "level; rerun with the -O flag the checkpoint was "
                       "written with (docs/optimizer.md)\n");
        }
        return fail(1);
      }
      std::printf("resumed %s at cycle %llu\n", resumeFile.c_str(),
                  static_cast<unsigned long long>(sim.cycle()));
    } else {
      for (const zeus::Port& p : design->ports) {
        if (p.mode == zeus::ast::ParamMode::In) {
          sim.setInput(p.name, std::vector<zeus::Logic>(p.nets.size(),
                                                        zeus::Logic::Zero));
        }
      }
      sim.setRset(true);
      sim.step();
      sim.setRset(false);
    }
    if (!chunked) {
      if (simCycles > 1) sim.step(static_cast<uint64_t>(simCycles - 1));
    } else {
      const auto t0 = std::chrono::steady_clock::now();
      auto writeCheckpoint = [&]() {
        if (checkpointFile.empty()) return;
        std::string err;
        if (!zeus::saveSnapshotFile(checkpointFile, sim.saveSnapshot(),
                                    err)) {
          std::fprintf(stderr, "zeusc: checkpoint write failed: %s\n",
                       err.c_str());
        }
      };
      const uint64_t total = static_cast<uint64_t>(simCycles);
      while (sim.cycle() < total) {
        const size_t errsBefore = sim.errors().size();
        sim.step(1);
        // A tripped watchdog aborts the cycle WITHOUT advancing
        // sim.cycle(); re-stepping would trip it identically forever.
        if (sim.errors().size() > errsBefore &&
            sim.errors().back().code == zeus::Diag::SimWatchdog) {
          break;
        }
        if (checkpointEvery > 0 &&
            sim.cycle() % static_cast<uint64_t>(checkpointEvery) == 0) {
          writeCheckpoint();
        }
        if (dieAtCycle >= 0 &&
            sim.cycle() >= static_cast<uint64_t>(dieAtCycle)) {
          std::fflush(nullptr);
          raise(dieAbort ? SIGABRT : SIGKILL);
        }
        // Simulation::step's own guard only trips between cycles of one
        // multi-cycle call, so the chunked loop keeps its own clock.
        if (simBudgetMs >= 0) {
          const auto ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
          if (ms > simBudgetMs) {
            simRc = 12;
            break;
          }
        }
      }
      writeCheckpoint();  // final (or budget-trip) resumable state
    }
    for (const zeus::Port& p : design->ports) {
      std::string bits;
      for (zeus::Logic v : sim.outputBits(p.name)) {
        bits += logicName(v);
        bits += ' ';
      }
      std::printf("  %-4s %-12s = %s\n",
                  p.mode == zeus::ast::ParamMode::In    ? "IN"
                  : p.mode == zeus::ast::ParamMode::Out ? "OUT"
                                                        : "INOUT",
                  p.name.c_str(), bits.c_str());
    }
    comp->recordSimulation(sim);
    mreport.sim = sim.metricsCounters();
    mreport.activity = sim.activityReport();
    zeus::eventlog::emit(
        zeus::eventlog::Severity::Info, "sim", "run-done",
        {zeus::eventlog::num("cycles", sim.cycle()),
         zeus::eventlog::num("faults",
                             static_cast<uint64_t>(sim.errors().size()))});
    bool budgetFault = false;
    for (const zeus::SimError& e : sim.errors()) {
      std::printf("  runtime error, cycle %llu, %s: %s\n",
                  static_cast<unsigned long long>(e.cycle),
                  e.netName.c_str(), e.message.c_str());
      if (e.code == zeus::Diag::SimWatchdog ||
          e.code == zeus::Diag::SimWallClock) {
        budgetFault = true;
      }
      // Distinct exit codes per budget-fault class, but only when the run
      // opted into checkpoint/budget handling — plain `--sim N` keeps
      // exit 0 for recoverable runtime faults (the corpus sweeps rely on
      // that).  Watchdog (11) outranks wall-clock (12).
      if (chunked) {
        if (e.code == zeus::Diag::SimWatchdog) {
          simRc = 11;
        } else if (e.code == zeus::Diag::SimWallClock && simRc == 0) {
          simRc = 12;
        }
      }
    }
    // A watchdog or wall-clock fault means the run hit a budget: show the
    // consumption-vs-budget report so the user can see which one and by
    // how much, without rerunning under --stats.
    if (budgetFault || simRc != 0) {
      std::fprintf(stderr, "%s", comp->resourceReport().render().c_str());
    }
    if (simRc != 0) {
      std::fprintf(stderr,
                   "zeusc: simulation stopped by %s budget (exit %d); "
                   "checkpoint %s\n",
                   simRc == 11 ? "the evaluator watchdog" : "the wall-clock",
                   simRc,
                   checkpointFile.empty() ? "not requested (--checkpoint)"
                                          : checkpointFile.c_str());
      zeus::eventlog::emit(
          zeus::eventlog::Severity::Error, "sim",
          simRc == 11 ? "watchdog-fault" : "budget-fault",
          {zeus::eventlog::num("cycle", sim.cycle()),
           zeus::eventlog::num("exit", static_cast<uint64_t>(simRc))});
      zeus::flightrec::dumpNow(simRc == 11 ? "watchdog" : "budget");
      emitSinks();
      return simRc;
    }
  }

  if (stats) {
    mreport.resources = comp->resourceReport();
    mreport.phases = zeus::metrics::phaseTimings();
    std::printf("%s", mreport.renderText().c_str());
  }

  emitSinks();
  return 0;
}

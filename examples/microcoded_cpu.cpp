// A microcoded CPU around the AM2901 bit slice.
//
// The paper remarks (§4.2) that replication is really a *meta language*
// for generating hardware, and "in the extreme case the meta language is
// a general purpose programming language which is used to 'compute'
// hardware".  This example takes that literally: C++ assembles a
// microprogram, emits it as a Zeus ROM (an array of constant-driven
// words), and wires a sequencer (microprogram counter + branch-on-zero
// flag) to the corpus AM2901.  The machine multiplies by repeated
// addition and halts with the product on Y.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/report.h"
#include "src/core/zeus.h"
#include "src/corpus/corpus.h"

using namespace zeus;

namespace {

// AM2901 field encodings (see am2901_test.cpp).
enum Src { AQ, AB, ZQ, ZB, ZA, DA, DQ, DZ };
enum Fn { ADD, SUBR, SUBS, OR_, AND_, NOTRS, EXOR, EXNOR };
enum Dst { QREG, NOP, RAMA, RAMF, RAMQD, RAMD, RAMQU, RAMU };

struct MicroOp {
  Src src = ZB;
  Fn fn = ADD;
  Dst dst = NOP;
  unsigned a = 0, b = 0, d = 0;
  unsigned next = 0;       ///< next microaddress
  bool branch = false;     ///< branch to nextz when the Z flag is set
  unsigned nextz = 0;
};

/// Emits one 30-bit ROM word as a Zeus signal-constant tuple (LSB-first
/// fields: i[9], a[4], b[4], d[4], next[4], nextz[4], branch[1]).
std::string romWord(const MicroOp& op) {
  std::string bits;
  auto emit = [&bits](unsigned value, int width) {
    for (int i = 0; i < width; ++i) {
      if (!bits.empty()) bits += ",";
      bits += ((value >> i) & 1) ? "1" : "0";
    }
  };
  emit(static_cast<unsigned>(op.src) | (static_cast<unsigned>(op.fn) << 3) |
           (static_cast<unsigned>(op.dst) << 6),
       9);
  emit(op.a, 4);
  emit(op.b, 4);
  emit(op.d, 4);
  emit(op.next, 4);
  emit(op.nextz, 4);
  emit(op.branch ? 1 : 0, 1);
  return "(" + bits + ")";
}

/// The microprogram: r0 := multiplicand; r1 := multiplier;
/// acc := 0; loop { acc += r0; if (--r1 == 0) halt }.
std::vector<MicroOp> assembleMultiply(unsigned x, unsigned y) {
  std::vector<MicroOp> rom(16);
  // 0: r0 := D(x)
  rom[0] = {DZ, ADD, RAMF, 0, 0, x, 1};
  // 1: r1 := D(y)
  rom[1] = {DZ, ADD, RAMF, 0, 1, y, 2};
  // 2: r2 (acc) := 0
  rom[2] = {DZ, ADD, RAMF, 0, 2, 0, 3};
  // 3: acc := acc + r0   (src AB: R = A(r0), S = B(r2))
  rom[3] = {AB, ADD, RAMF, 0, 2, 0, 4};
  // 4: r1 := r1 - 1      (src DA: R = D(1), S = A(r1); SUBR: S - R)
  rom[4] = {DA, SUBR, RAMF, 1, 1, 1, 5};
  // 5: branch on Z (set by step 4) to halt, else loop
  rom[5] = {ZB, ADD, NOP, 0, 0, 0, 3, true, 6};
  // 6: halt: Y = F = 0 + B(r2), no write-back, loop forever
  rom[6] = {ZB, ADD, NOP, 0, 2, 0, 6};
  for (size_t i = 7; i < rom.size(); ++i) {
    rom[i] = {ZB, ADD, NOP, 0, 0, 0, static_cast<unsigned>(i)};
  }
  return rom;
}

std::string buildSource(const std::vector<MicroOp>& rom) {
  std::string src = corpus::kAm2901;  // defines TYPE nib, am2901
  // Drop the corpus instantiation: top-level SIGNALs must follow all
  // TYPE declarations (§3), and we add our own types below.
  size_t inst = src.find("SIGNAL alu: am2901;");
  if (inst != std::string::npos) src.erase(inst, sizeof("SIGNAL alu: am2901;") - 1);
  src += R"(
TYPE ucpu = COMPONENT (OUT y: nib; OUT done: boolean) IS
  CONST halt = 6;
  SIGNAL alu: am2901;
         mpc: ARRAY[1..4] OF REG;
         freg: REG;
         romw: ARRAY[0..15] OF ARRAY[1..30] OF boolean;
         maddr: ARRAY[1..4] OF multiplex;
         w: ARRAY[1..30] OF boolean;
BEGIN
  <* While RSET holds, the microprogram counter is still undefined:
     fetch microword 0 explicitly so no UNDEF address reaches NUM. *>
  IF RSET THEN maddr := (0,0,0,0) ELSE maddr := mpc.out END;
)";
  for (size_t i = 0; i < rom.size(); ++i) {
    src += "  romw[" + std::to_string(i) + "] := " + romWord(rom[i]) +
           ";\n";
  }
  src += R"(
  w := romw[NUM(maddr)];
  alu(w[1..9], w[10..13], w[14..17], w[18..21], 0, 0, 0, 0, 0,
      y, *, *, *);
  freg.in := alu.fzero;
  IF RSET THEN mpc.in := (0,0,0,0)
  ELSIF AND(w[30], freg.out) THEN mpc.in := w[26..29]
  ELSE mpc.in := w[22..25]
  END;
  done := EQUAL(mpc.out, BIN(halt, 4));
END;

SIGNAL cpu: ucpu;
)";
  return src;
}

}  // namespace

int main() {
  const unsigned x = 5, y = 3;
  std::vector<MicroOp> rom = assembleMultiply(x, y);
  std::string source = buildSource(rom);

  auto comp = Compilation::fromSource("ucpu.zeus", source);
  auto design = comp->ok() ? comp->elaborate("cpu") : nullptr;
  if (!design) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  SimGraph graph = buildSimGraph(*design, comp->diags());
  if (graph.hasCycle) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  DesignStats stats = computeStats(*design, graph);
  std::printf("microcoded CPU: %zu nets, %zu gates, %zu registers, "
              "depth %u\n",
              stats.nets, stats.gates, stats.registers, stats.depth);

  Simulation sim(graph);
  sim.setRset(true);
  sim.step();
  sim.setRset(false);
  int cycles = 0;
  while (sim.output("done") != Logic::One && cycles < 200) {
    sim.step();
    ++cycles;
  }
  sim.step();  // settle Y through the halt instruction
  auto product = sim.outputUint("y");
  std::printf("%u * %u = %llu  (computed in %d microcycles)\n", x, y,
              static_cast<unsigned long long>(product.value_or(~0ull)),
              cycles);
  for (const SimError& e : sim.errors()) {
    std::printf("runtime error @%llu %s: %s\n",
                static_cast<unsigned long long>(e.cycle),
                e.netName.c_str(), e.message.c_str());
  }
  bool ok = product == ((x * y) & 0xF) && sim.errors().empty();
  std::printf(ok ? "OK\n" : "FAILED\n");
  return ok ? 0 : 1;
}

// Quickstart: compile, elaborate and simulate the paper's full adder
// (Fig. 3.2.2) through the public API — the ten-line tour of the library.
#include <cstdio>

#include "src/core/zeus.h"

static const char* kSource = R"(
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
  s := XOR(a,b);
  cout := AND(a,b)
END;

fulladder = COMPONENT (IN a,b,cin: boolean; OUT cout,s: boolean) IS
  SIGNAL h1,h2: halfadder;
BEGIN
  h1(a,b,*,h2.a);
  h2(h1.s,cin,*,s);
  cout := OR(h1.cout,h2.cout)
END;

SIGNAL add: fulladder;
)";

int main() {
  // 1. Compile (lex, parse, check).
  auto comp = zeus::Compilation::fromSource("fulladder.zeus", kSource);
  if (!comp->ok()) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }

  // 2. Elaborate the design rooted at the SIGNAL named "add".
  auto design = comp->elaborate("add");
  if (!design) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  std::printf("elaborated: %zu nets, %zu nodes\n",
              design->netlist.netCount(), design->netlist.nodeCount());

  // 3. Build the semantics graph (§8) and simulate.
  zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
  zeus::Simulation sim(graph);

  std::printf("a b cin | s cout\n");
  for (int a = 0; a <= 1; ++a) {
    for (int b = 0; b <= 1; ++b) {
      for (int c = 0; c <= 1; ++c) {
        sim.setInput("a", zeus::logicFromBool(a));
        sim.setInput("b", zeus::logicFromBool(b));
        sim.setInput("cin", zeus::logicFromBool(c));
        sim.step();
        std::printf("%d %d  %d  | %s  %s\n", a, b, c,
                    std::string(logicName(sim.output("s"))).c_str(),
                    std::string(logicName(sim.output("cout"))).c_str());
      }
    }
  }

  // 4. Four-valued logic: an undefined input propagates as UNDEF where it
  // matters, while short-circuit evaluation still decides what it can.
  sim.clearInput("a");
  sim.setInput("b", zeus::Logic::Zero);
  sim.setInput("cin", zeus::Logic::Zero);
  sim.step();
  std::printf("a=? b=0 cin=0 -> s=%s cout=%s (AND fires 0 early)\n",
              std::string(logicName(sim.output("s"))).c_str(),
              std::string(logicName(sim.output("cout"))).c_str());
  return 0;
}

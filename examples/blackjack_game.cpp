// Plays the paper's blackjack finite state machine (§10) through a few
// scripted card streams, printing the state trace as a waveform — the FSM
// example is the paper's flagship demonstration of REG + RSET + the
// conditional-assignment rules.
#include <cstdio>
#include <vector>

#include "src/core/zeus.h"
#include "src/corpus/corpus.h"

using namespace zeus;

namespace {

struct Machine {
  std::unique_ptr<Compilation> comp;
  std::unique_ptr<Design> design;
  SimGraph graph;
  std::unique_ptr<Simulation> sim;

  Machine() {
    comp = Compilation::fromSource("blackjack.zeus", corpus::kBlackjack);
    design = comp->elaborate("bj");
    graph = buildSimGraph(*design, comp->diags());
    sim = std::make_unique<Simulation>(graph);
    sim->setInput("ycard", Logic::Zero);
    sim->setInputUint("value", 0);
    sim->setRset(true);
    sim->step();
    sim->setRset(false);
    sim->step();
    sim->step();
  }

  const char* flags() {
    static char buf[32];
    std::snprintf(buf, sizeof buf, "hit=%s stand=%s broke=%s",
                  logicName(sim->output("hit")).data(),
                  logicName(sim->output("stand")).data(),
                  logicName(sim->output("broke")).data());
    return buf;
  }

  /// Returns "stand", "broke" or "hit" after feeding one card.
  const char* play(uint64_t card) {
    sim->setInputUint("value", card);
    sim->setInput("ycard", Logic::One);
    sim->step();
    sim->setInput("ycard", Logic::Zero);
    sim->step(2);  // sum, firstace
    for (int i = 0; i < 8; ++i) {
      sim->step();
      if (sim->output("stand") == Logic::One) return "stand";
      if (sim->output("broke") == Logic::One) return "broke";
      if (sim->output("hit") == Logic::One) return "hit";
    }
    return "stuck?";
  }
};

void game(const char* label, const std::vector<uint64_t>& cards) {
  Machine m;
  std::printf("game %-28s: ", label);
  int total = 0;
  for (uint64_t c : cards) {
    total += static_cast<int>(c);
    const char* r = m.play(c);
    std::printf("%llu->%s ", static_cast<unsigned long long>(c), r);
    if (r[0] != 'h') break;
  }
  std::printf("   (%s)\n", m.flags());
}

}  // namespace

int main() {
  std::printf("Zeus blackjack dealer machine (paper §10)\n");
  std::printf("cards are 5-bit values; ace=1 counts 11 while safe\n\n");
  game("ten + nine = 19", {10, 9});
  game("ten + five + ten = 25", {10, 5, 10});
  game("ace + ten = 21", {1, 10});
  game("ace + six = 17", {1, 6});
  game("5 + 6 + ace + 10", {5, 6, 1, 10});
  game("2s until it stands at 18", {2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2});
  return 0;
}

// A small memory subsystem built entirely in Zeus: the §5 RAM (REG array
// with NUM addressing) used as a register file behind a tiny accumulator
// datapath — demonstrates dynamic indexing, the predefined arithmetic
// components and multi-cycle operation.
#include <cstdio>

#include "src/core/zeus.h"

using namespace zeus;

static const char* kSource = R"(
TYPE word = ARRAY[1..8] OF boolean;

<* Register file: 16 words of 8 bits, one read and one write port. *>
regfile = COMPONENT (IN raddr: ARRAY[1..4] OF boolean;
                     IN waddr: ARRAY[1..4] OF boolean;
                     IN wdata: word; IN we: boolean;
                     OUT rdata: word) IS
  SIGNAL ram: ARRAY[0..15] OF ARRAY[1..8] OF REG;
BEGIN
  IF we THEN
    ram[NUM(waddr)].in := wdata
  END;
  rdata := ram[NUM(raddr)].out;
END;

<* Accumulator machine: acc := acc + mem[raddr] when 'add' is raised. *>
accmachine = COMPONENT (IN raddr: ARRAY[1..4] OF boolean;
                        IN waddr: ARRAY[1..4] OF boolean;
                        IN wdata: word; IN we: boolean;
                        IN add: boolean; IN clear: boolean;
                        OUT acc: word) IS
  SIGNAL rf: regfile;
         a: ARRAY[1..8] OF REG;
BEGIN
  rf(raddr, waddr, wdata, we, *);
  IF clear THEN a.in := BIN(0,8) END;
  IF AND(add, NOT clear) THEN a.in := plus(a.out, rf.rdata) END;
  acc := a.out;
END;

SIGNAL machine: accmachine;
)";

int main() {
  auto comp = Compilation::fromSource("memory_system.zeus", kSource);
  auto design = comp->ok() ? comp->elaborate("machine") : nullptr;
  if (!design) {
    std::fprintf(stderr, "%s", comp->diagnosticsText().c_str());
    return 1;
  }
  SimGraph graph = buildSimGraph(*design, comp->diags());
  Simulation sim(graph);

  auto quiet = [&] {
    sim.setInput("we", Logic::Zero);
    sim.setInput("add", Logic::Zero);
    sim.setInput("clear", Logic::Zero);
    sim.setInputUint("raddr", 0);
    sim.setInputUint("waddr", 0);
    sim.setInputUint("wdata", 0);
  };
  quiet();

  // Fill the register file with the first 16 squares (mod 256).
  for (uint64_t i = 0; i < 16; ++i) {
    sim.setInputUint("waddr", i);
    sim.setInputUint("wdata", (i * i) & 0xFF);
    sim.setInput("we", Logic::One);
    sim.step();
  }
  quiet();
  sim.setInput("clear", Logic::One);
  sim.step();
  quiet();

  // Sum the squares of 1..5 through the accumulator.
  uint64_t expect = 0;
  for (uint64_t i = 1; i <= 5; ++i) {
    sim.setInputUint("raddr", i);
    sim.setInput("add", Logic::One);
    sim.step();
    expect += i * i;
  }
  quiet();
  sim.step();
  auto acc = sim.outputUint("acc");
  std::printf("sum of squares 1..5 via Zeus datapath: %llu (expected %llu)\n",
              static_cast<unsigned long long>(acc.value_or(~0ull)),
              static_cast<unsigned long long>(expect & 0xFF));
  if (!sim.errors().empty()) {
    for (const SimError& e : sim.errors())
      std::printf("runtime error @%llu %s\n",
                  static_cast<unsigned long long>(e.cycle),
                  e.netName.c_str());
    return 1;
  }
  return acc == (expect & 0xFF) ? 0 : 1;
}

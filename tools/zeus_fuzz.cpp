// Crash-free fuzz harness for the Zeus compilation pipeline.
//
// One entry point, two drivers:
//
//   * libFuzzer: build with -DZEUS_FUZZ_LIBFUZZER=ON and a clang
//     -fsanitize=fuzzer toolchain; LLVMFuzzerTestOneInput is the usual
//     hook.
//   * corpus replay (default): `zeus_fuzz FILE...` runs every file
//     through the same pipeline and exits non-zero only when an input
//     crashes or produces an unstructured failure.  This mode is wired
//     into ctest (fuzz_corpus_replay) so the checked-in regression corpus
//     runs on every test invocation — under ASan+UBSan with
//     -DZEUS_SANITIZE=ON.
//
// The invariant being fuzzed: for ANY byte string, the pipeline either
// succeeds or reports structured diagnostics.  It never aborts, never
// trips a sanitizer, and never hangs — resource limits (zeus::Limits)
// bound every stage.
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/codegen/emit.h"
#include "src/core/zeus.h"
#include "src/sim/graph.h"
#include "src/sim/snapshot.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace {

// Tight budgets so pathological inputs fail fast instead of timing out.
zeus::Limits fuzzLimits() {
  zeus::Limits lim;
  lim.maxSourceBytes = 1u << 20;
  lim.maxTokens = 1u << 18;
  lim.maxParseDepth = 64;
  lim.maxParseErrors = 32;
  lim.maxTypeDepth = 64;
  lim.maxTypes = 1u << 14;
  lim.maxInstanceDepth = 64;
  lim.maxInstances = 1u << 14;
  lim.maxNets = 1u << 18;
  lim.maxElabSteps = 1u << 20;
  return lim;
}

/// Runs one input through lex/parse/check, elaborates every top-level
/// SIGNAL declaration, and simulates a few cycles when a design survives.
/// Returns true iff the pipeline behaved: success, or structured
/// diagnostics — never an exception or a crash.
bool runOne(const uint8_t* data, size_t size) {
  // Fuzz with the observability layer live: span recording and per-net
  // activity profiling run on every input, so the instrumentation paths
  // (including the JSON renderers) get the same crash-free guarantee as
  // the pipeline itself.  The buffer is cleared per input to bound memory.
  zeus::trace::clear();
  zeus::trace::setEnabled(true);
  // Every input also replays the binary checkpoint loaders
  // (src/sim/snapshot.h): truncated, corrupt or adversarial ZSNP bytes
  // must produce a structured error string, never a crash or an OOM.
  {
    std::string err;
    zeus::SnapshotKind kind;
    (void)zeus::snapshotKindOfBytes(data, size, kind, err);
    zeus::SimSnapshot snap;
    (void)zeus::snapshotFromBytes(data, size, snap, err);
    zeus::CampaignProgress progress;
    (void)zeus::campaignFromBytes(data, size, progress, err);
    zeus::FarmSnapshot farm;
    (void)zeus::farmFromBytes(data, size, farm, err);
  }
  std::string text(reinterpret_cast<const char*>(data), size);
  auto comp = zeus::Compilation::fromSource("fuzz.zeus", std::move(text),
                                            fuzzLimits());
  if (!comp->ok()) return true;  // structured rejection is a pass

  for (const zeus::ast::DeclPtr& d : comp->program().decls) {
    if (d->kind != zeus::ast::DeclKind::Signal) continue;
    for (const std::string& top : d->names) {
      auto design = comp->elaborate(top);
      if (!design) continue;  // elaboration error: structured, fine
      zeus::SimGraph graph = zeus::buildSimGraph(*design, comp->diags());
      if (graph.hasCycle) continue;  // reported as CombinationalLoop
      // The static lint pass must behave on anything that survives
      // elaboration: findings are structured diagnostics, never a crash.
      zeus::LintReport lr = zeus::runLint(*design, graph, comp->diags());
      (void)lr.renderText(comp->sources());
      (void)lr.renderJson(comp->sources(), top);
      // The optimization pipeline + post-pass verifier must behave on
      // every design that survives elaboration.  A verifier failure means
      // a pass emitted a malformed graph — that IS the kind of bug this
      // harness exists to catch, so treat it as a hard failure.
      zeus::OptReport opt = zeus::optimizeDesign(*design, comp->diags());
      (void)opt.renderJson(top);
      if (opt.ran && !opt.verified) {
        std::fprintf(stderr, "zeus_fuzz: optimizer verifier failed: %s\n",
                     opt.verifyError.c_str());
        return false;
      }
      // Simulate the *optimized* design: the evaluators must behave on
      // post-pipeline graphs too.
      graph = zeus::buildSimGraph(*design, comp->diags());
      if (graph.hasCycle) continue;
      // The codegen emitter (source generation only — no host toolchain)
      // must refuse malformed graphs with a structured error, never
      // crash: every elaboration survivor goes through it.
      (void)zeus::codegen::emitCompiledCpp(graph);
      zeus::Simulation::Options sopts;
      sopts.maxEventsPerCycle = 1u << 22;
      sopts.maxSimMillis = 2000;
      sopts.usage = comp->usage();
      sopts.profileActivity = true;
      zeus::Simulation sim(graph, sopts);
      sim.setRandomSeed(0x5eedull);
      sim.step(4);  // runtime faults land in sim.errors(), not here
      comp->recordSimulation(sim);
      // Render every observability sink and discard the output: the
      // metrics/trace serializers must behave on arbitrary designs too.
      zeus::metrics::MetricsReport mr;
      mr.design = top;
      mr.phases = zeus::metrics::phaseTimings();
      mr.resources = comp->resourceReport();
      mr.sim = sim.metricsCounters();
      mr.activity = sim.activityReport();
      (void)mr.renderJson();
      (void)mr.renderText();
      (void)zeus::trace::renderChromeJson();
    }
  }
  return true;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  // Structured failures (the optimizer verifier rejecting a pass's
  // output) are findings just like crashes: trap so libFuzzer saves the
  // input.
  if (!runOne(data, size)) __builtin_trap();
  return 0;
}

#ifndef ZEUS_FUZZ_LIBFUZZER
int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::FILE* f = std::fopen(argv[i], "rb");
    if (!f) {
      std::fprintf(stderr, "FAIL %s: cannot open\n", argv[i]);
      ++failures;
      continue;
    }
    std::vector<uint8_t> bytes;
    uint8_t buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
      bytes.insert(bytes.end(), buf, buf + n);
    }
    std::fclose(f);
    if (runOne(bytes.data(), bytes.size())) {
      std::fprintf(stderr, "ok   %s (%zu bytes)\n", argv[i], bytes.size());
    } else {
      std::fprintf(stderr, "FAIL %s\n", argv[i]);
      ++failures;
    }
  }
  return failures ? 1 : 0;
}
#endif
